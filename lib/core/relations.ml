type relation = MHB | CHB | MCW | CCW | MOW | COW

let all_relations = [ MHB; CHB; MCW; CCW; MOW; COW ]

let relation_name = function
  | MHB -> "must-have-happened-before"
  | CHB -> "could-have-happened-before"
  | MCW -> "must-have-been-concurrent-with"
  | CCW -> "could-have-been-concurrent-with"
  | MOW -> "must-have-been-ordered-with"
  | COW -> "could-have-been-ordered-with"

type t = {
  n : int;
  feasible_count : int;
  truncated : bool;
  distinct_classes : int;
  before_some : Rel.t;
  comparable_some : Rel.t;
  incomparable_some : Rel.t;
}

(* The traversal, accumulation and caching machinery behind these
   summaries lives in {!Session} (lib/feasible) — one registered fold
   over one shared pass of F(P).  This module only rebuilds its public
   record from the session's summary and keeps the relation algebra. *)
let of_summary (s : Session.summary) =
  {
    n = s.Session.n;
    feasible_count = s.Session.feasible_count;
    truncated = s.Session.truncated;
    distinct_classes = s.Session.distinct_classes;
    before_some = s.Session.before_some;
    comparable_some = s.Session.comparable_some;
    incomparable_some = s.Session.incomparable_some;
  }

let of_session session = of_summary (Session.summary session)

let of_session_reduced session =
  (* The reduced path's happened-before fill is per-pair under the
     session's engine routing; give the auto ladder its tier-1 oracle. *)
  Triage.attach session;
  of_summary (Session.summary_reduced session)

(* Outcome-typed constructors: [Bound_hit] exactly when the underlying
   summary was truncated (by [?limit] or by the session budget), i.e.
   when the could-have bits are under-approximate and the must-have
   relations derived from them over-approximate. *)
let of_session_outcome session =
  Budget.map of_summary (Session.summary_outcome session)

let of_session_reduced_outcome session =
  Triage.attach session;
  Budget.map of_summary (Session.summary_reduced_outcome session)

(* The historical one-shot entry points: a private, cache-disabled
   session per call, so their counter reports stay exactly reproducible
   (no warm LRU can zero out a later run's search work). *)
let compute ?limit ?(jobs = 1) ?stats sk =
  of_session (Session.create ?limit ~jobs ?stats ~cache:Session.no_cache sk)

let compute_reduced ?limit ?(jobs = 1) ?stats sk =
  of_session_reduced (Session.create ?limit ~jobs ?stats ~cache:Session.no_cache sk)

let holds t relation a b =
  if a = b then false
  else
    (* The must-relations need F(P) non-empty — but under a truncated
       pass [feasible_count] may read 0 with feasible executions merely
       unvisited (a budget can expire before the first schedule
       completes).  Treating that 0 as "infeasible" would flip every
       must-relation to [false]: an under-approximation, the unsound
       direction for must.  A truncated pass therefore presumes
       feasibility, keeping must-answers over-approximate as
       documented. *)
    let feasible_known = t.feasible_count > 0 || t.truncated in
    match relation with
    | CHB -> Rel.mem t.before_some a b
    | MHB -> feasible_known && not (Rel.mem t.before_some b a)
    | CCW -> Rel.mem t.incomparable_some a b
    | MOW -> feasible_known && not (Rel.mem t.incomparable_some a b)
    | COW -> Rel.mem t.comparable_some a b
    | MCW -> feasible_known && not (Rel.mem t.comparable_some a b)

let to_rel t relation =
  let r = Rel.create t.n in
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      if holds t relation a b then Rel.add r a b
    done
  done;
  r

let short_name = function
  | MHB -> "MHB"
  | CHB -> "CHB"
  | MCW -> "MCW"
  | CCW -> "CCW"
  | MOW -> "MOW"
  | COW -> "COW"

let pp_matrix ppf (t, relation, events) =
  let label e = events.(e).Event.label in
  let width =
    Array.fold_left (fun w e -> max w (String.length e.Event.label)) 3 events
  in
  Format.fprintf ppf "@[<v>%s (%s):@ " (relation_name relation)
    (short_name relation);
  Format.fprintf ppf "%*s " width "";
  for b = 0 to t.n - 1 do
    Format.fprintf ppf "%2d " b
  done;
  Format.fprintf ppf "@ ";
  for a = 0 to t.n - 1 do
    Format.fprintf ppf "%*s " width (label a);
    for b = 0 to t.n - 1 do
      Format.fprintf ppf " %s "
        (if a = b then "." else if holds t relation a b then "X" else "-")
    done;
    Format.fprintf ppf "@ "
  done;
  Format.fprintf ppf "@]"

let pp_summary ppf (t, events) =
  Format.fprintf ppf "@[<v>%d feasible schedule%s%s in %d distinct class%s@ @ "
    t.feasible_count
    (if t.feasible_count = 1 then "" else "s")
    (if t.truncated then " (truncated)" else "")
    t.distinct_classes
    (if t.distinct_classes = 1 then "" else "es");
  List.iter
    (fun r -> Format.fprintf ppf "%a@ " pp_matrix (t, r, events))
    all_relations;
  Format.fprintf ppf "@]"
