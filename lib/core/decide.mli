(** Per-pair decision procedures for the ordering relations.

    {!Relations.compute} exhausts all feasible schedules to fill every
    matrix at once; when only a single pair matters (as in the Theorem 1–4
    experiments, which ask about one [(a, b)]), the happened-before
    relations can be decided by memoized state-space reachability instead —
    usually exponentially fewer states than schedules.  The concurrency
    relations still require per-class partial orders and fall back to
    enumeration.

    [?limit] and [?jobs] (defaults: unlimited, [1]) carry the uniform
    enumeration semantics: both are handed to
    {!Relations.compute_reduced} when the lazy class-level summary is
    materialized (a [limit] caps its representative walk), while
    per-pair reachability queries stay sequential (they share one memo
    table) and are unaffected by either.  [?stats] threads one
    {!Telemetry.t} through the reachability engine and the summary. *)

type t

val of_session : Session.t -> t
(** A decision procedure riding a shared {!Session}: reachability
    queries go through the session's single memoized {!Reach} engine and
    the lazy class-level summary is the session's (cached)
    [summary_reduced] — so many per-pair queries, the full matrices and
    the race analysis can all amortize one session. *)

val create :
  ?limit:int -> ?jobs:int -> ?stats:Telemetry.t -> ?budget:Budget.t ->
  Execution.t -> t
(** One-shot wrapper: a private cache-disabled session per call.
    [?budget] bounds every engine behind the decision procedure; expiry
    degrades each relation in its sound direction (see
    {!holds_outcome}), never as an exception. *)

val of_skeleton :
  ?limit:int -> ?jobs:int -> ?stats:Telemetry.t -> ?budget:Budget.t ->
  Skeleton.t -> t

val session : t -> Session.t

val skeleton : t -> Skeleton.t

val stats_commit : t -> unit
(** Folds the reachability engine's memo-table probe/resize totals into
    the counters ({!Reach.stats_commit}); call before reading a stats
    report. *)

val mhb : t -> int -> int -> bool
(** Must-have-happened-before, via {!Session.must_before} (memoized
    reachability, or a refuting SAT probe under [Engine.Sat]). *)

val chb : t -> int -> int -> bool
(** Could-have-happened-before, via {!Session.exists_before}. *)

val ccw : t -> int -> int -> bool
(** Could-have-been-concurrent-with, via {!Session.exists_race}
    (state-based: some reachable context runs the pair back-to-back in
    both orders; a two-copy common-prefix formula under [Engine.Sat]). *)

val mow : t -> int -> int -> bool
(** Must-have-been-ordered-with: [feasible && not ccw]. *)

val mcw : t -> int -> int -> bool
(** Must-have-been-concurrent-with, via the class-level summary
    ({!Relations.compute_reduced}: sleep-set partial-order reduction).
    Still exponential in the worst case, but exponentially cheaper than
    raw enumeration on traces with independent events. *)

val cow : t -> int -> int -> bool
(** Could-have-been-ordered-with, class-level like {!mcw}. *)

val holds : t -> Relations.relation -> int -> int -> bool

val holds_outcome : t -> Relations.relation -> int -> int -> bool Budget.outcome
(** {!holds} with degradation made explicit: [Bound_hit] when the
    session budget expired somewhere under the query, in which case the
    value errs in the relation's sound direction — must-relations report
    [true] (over-approximation), could-relations [false]
    (under-reporting). *)

val mhb_outcome : t -> int -> int -> bool Budget.outcome
val chb_outcome : t -> int -> int -> bool Budget.outcome
val ccw_outcome : t -> int -> int -> bool Budget.outcome
val mow_outcome : t -> int -> int -> bool Budget.outcome
val mcw_outcome : t -> int -> int -> bool Budget.outcome
val cow_outcome : t -> int -> int -> bool Budget.outcome

val feasible_count : t -> int
