(** Per-pair decision procedures for the ordering relations.

    {!Relations.compute} exhausts all feasible schedules to fill every
    matrix at once; when only a single pair matters (as in the Theorem 1–4
    experiments, which ask about one [(a, b)]), the happened-before
    relations can be decided by memoized state-space reachability instead —
    usually exponentially fewer states than schedules.  The concurrency
    relations still require per-class partial orders and fall back to
    enumeration.

    [?jobs] (default [1]) is handed to {!Relations.compute_reduced} when
    the lazy class-level summary is materialized; per-pair reachability
    queries stay sequential (they share one memo table). *)

type t

val create : ?jobs:int -> Execution.t -> t

val of_skeleton : ?jobs:int -> Skeleton.t -> t

val skeleton : t -> Skeleton.t

val mhb : t -> int -> int -> bool
(** Must-have-happened-before, via {!Reach.must_before}. *)

val chb : t -> int -> int -> bool
(** Could-have-happened-before, via {!Reach.exists_before}. *)

val ccw : t -> int -> int -> bool
(** Could-have-been-concurrent-with, via {!Reach.exists_race} (state-based:
    some reachable context runs the pair back-to-back in both orders). *)

val mow : t -> int -> int -> bool
(** Must-have-been-ordered-with: [feasible && not ccw]. *)

val mcw : t -> int -> int -> bool
(** Must-have-been-concurrent-with, via the class-level summary
    ({!Relations.compute_reduced}: sleep-set partial-order reduction).
    Still exponential in the worst case, but exponentially cheaper than
    raw enumeration on traces with independent events. *)

val cow : t -> int -> int -> bool
(** Could-have-been-ordered-with, class-level like {!mcw}. *)

val holds : t -> Relations.relation -> int -> int -> bool

val feasible_count : t -> int
