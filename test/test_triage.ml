(* The tiered triage pipeline behind [--engine auto]: differential tests
   against the exact engines, soundness of every [Approx] decider in its
   advertised direction, the streaming trace reader, the columnar
   big-trace representation, and the budget-slicing contract (a defeated
   tier escalates and never changes the answer; a dead session budget
   degrades in the sound direction). *)

let qcheck = QCheck_alcotest.to_alcotest

let with_engine e f =
  let saved = Engine.current () in
  Engine.set e;
  Fun.protect ~finally:(fun () -> Engine.set saved) f

(* The triage slices are read from the environment on every query, so a
   test can shrink a tier just for its own duration. *)
let with_env var value f =
  let saved = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value saved ~default:""))
    f

let small_execution prog =
  match Gen_progs.completed_trace prog with
  | None -> None
  | Some tr ->
      if Trace.n_events tr > 8 then None else Some (Trace.to_execution tr)

let fresh_session x = Session.of_execution ~cache:Session.no_cache x

(* ------------------------------------------------------------------ *)
(* Differential: the auto ladder answers every session primitive exactly
   as the seed engine does, on every generated program. *)

let session_answers engine x =
  with_engine engine (fun () ->
      let s = fresh_session x in
      if engine = Engine.Auto then Triage.attach s;
      let n = (Session.skeleton s).Skeleton.n in
      let pairs = ref [] in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          pairs :=
            ( Session.exists_before s a b,
              Session.must_before s a b,
              Session.exists_race s a b )
            :: !pairs
        done
      done;
      (Session.feasible_exists s, List.rev !pairs))

let prop_auto_matches_naive_sessions =
  QCheck.Test.make ~name:"auto ≡ naive on all session primitives" ~count:80
    Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x -> session_answers Engine.Auto x = session_answers Engine.Naive x)

let relation_matrix engine x =
  with_engine engine (fun () ->
      let s = fresh_session x in
      let d = Decide.of_session s in
      let n = (Session.skeleton s).Skeleton.n in
      List.map
        (fun r ->
          let m = ref [] in
          for a = 0 to n - 1 do
            for b = 0 to n - 1 do
              m := Decide.holds d r a b :: !m
            done
          done;
          (r, !m))
        Relations.all_relations)

let prop_auto_matches_packed_relations =
  QCheck.Test.make ~name:"auto ≡ packed on all six paper relations"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x -> relation_matrix Engine.Auto x = relation_matrix Engine.Packed x)

let race_set engine ~jobs x =
  with_engine engine (fun () -> Race.feasible_races ~jobs x)

let prop_auto_matches_race_sets =
  QCheck.Test.make ~name:"auto ≡ reach on feasible race sets (jobs 1 and 2)"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let reference = race_set Engine.Packed ~jobs:1 x in
          race_set Engine.Auto ~jobs:1 x = reference
          && race_set Engine.Auto ~jobs:2 x = reference)

let prop_auto_matches_sat_relations =
  QCheck.Test.make ~name:"auto ≡ sat on exists_before/must_before" ~count:40
    Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let answers engine =
            with_engine engine (fun () ->
                let s = fresh_session x in
                if engine = Engine.Auto then Triage.attach s;
                let n = (Session.skeleton s).Skeleton.n in
                let m = ref [] in
                for a = 0 to n - 1 do
                  for b = 0 to n - 1 do
                    m :=
                      (Session.exists_before s a b, Session.must_before s a b)
                      :: !m
                  done
                done;
                !m)
          in
          answers Engine.Auto = answers Engine.Sat)

(* ------------------------------------------------------------------ *)
(* Decider soundness: each [Approx] device's conclusive verdicts agree
   with the exact engine in the direction it advertises. *)

let exact_mhb x =
  with_engine Engine.Packed (fun () ->
      let d = Decide.of_session (fresh_session x) in
      fun a b -> Decide.mhb d a b)

let exact_chb x =
  with_engine Engine.Packed (fun () ->
      let d = Decide.of_session (fresh_session x) in
      fun a b -> Decide.chb d a b)

let check_decider ~exact decider n =
  let ok = ref true in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      (match decider.Approx.decide a b with
      | Approx.Proved -> if not (exact a b) then ok := false
      | Approx.Refuted -> if exact a b then ok := false
      | Approx.Unknown -> ())
    done
  done;
  !ok

let prop_mhb_deciders_sound =
  QCheck.Test.make
    ~name:"order_clock/egp/hmw mhb deciders are sound vs the exact engine"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let sk = Skeleton.of_execution x in
          let mhb = exact_mhb x in
          let n = sk.Skeleton.n in
          let clock_ok =
            match Order_clock.of_skeleton sk with
            | None -> true
            | Some c -> check_decider ~exact:mhb (Order_clock.mhb_decider c) n
          in
          let egp_ok =
            match Egp.build x with
            | exception _ -> true
            | e -> check_decider ~exact:mhb (Egp.mhb_decider e) n
          in
          let hmw_ok =
            check_decider ~exact:mhb (Hmw.mhb_decider (Hmw.of_execution x)) n
          in
          clock_ok && egp_ok && hmw_ok)

let prop_vclock_chb_decider_sound =
  QCheck.Test.make ~name:"vclock chb decider is sound vs the exact engine"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let chb = exact_chb x in
          check_decider ~exact:chb
            (Vclock.chb_decider (Vclock.of_execution x))
            (Array.length x.Execution.events))

let prop_lamport_refuter_sound =
  QCheck.Test.make
    ~name:"lamport refuter is sound vs the observed happened-before"
    ~count:80 Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let vc = Vclock.of_execution x in
          check_decider
            ~exact:(fun a b -> Vclock.hb vc a b)
            (Lamport.observed_hb_refuter (Lamport.of_execution x))
            (Array.length x.Execution.events))

let prop_static_order_decider_sound =
  QCheck.Test.make
    ~name:"static_order mhb decider is sound vs the exact engine" ~count:40
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 8 then true
          else
            match Static_order.analyze prog with
            | exception _ -> true (* outside the analysed fragment *)
            | so ->
                let x = Trace.to_execution tr in
                check_decider ~exact:(exact_mhb x)
                  (Static_order.mhb_decider so tr)
                  (Array.length x.Execution.events))

let test_make_clamps_direction () =
  let d =
    Approx.make ~name:"test" ~relation:"mhb" ~direction:Approx.Positive
      (fun _ _ -> Approx.Refuted)
  in
  Alcotest.(check string)
    "Refuted from a Positive-only device clamps to Unknown" "unknown"
    (Approx.verdict_name (d.Approx.decide 0 1))

(* ------------------------------------------------------------------ *)
(* Streaming reader: [Trace_io.load] is [of_string] with file-sized
   memory, same answers and same error/line-number contract. *)

let with_temp_file content f =
  let path = Filename.temp_file "eo_triage_test" ".eotrace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let traces_equal a b =
  a.Trace.events = b.Trace.events
  && Rel.equal a.Trace.program_order b.Trace.program_order
  && a.Trace.outcome = b.Trace.outcome
  && a.Trace.final_store = b.Trace.final_store

let prop_load_matches_of_string =
  QCheck.Test.make ~name:"Trace_io.load ≡ of_string on generated traces"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          let text = Trace_io.to_string tr in
          with_temp_file text (fun path ->
              traces_equal (Trace_io.load path) (Trace_io.of_string text)))

let error_message f = match f () with
  | exception Failure m -> m
  | _ -> "no error"

let test_load_error_line_numbers () =
  (* A malformed line deep in the file is reported with the same
     line-numbered message by both readers. *)
  let tr = Interp.run (Parse.program "proc a { x := 1 }\nproc b { y := x }") in
  let good = Trace_io.to_string tr in
  let broken = good ^ "event bogus\n" in
  let lineno = List.length (String.split_on_char '\n' good) in
  let from_string = error_message (fun () -> Trace_io.of_string broken) in
  let from_file =
    with_temp_file broken (fun path ->
        error_message (fun () -> Trace_io.load path))
  in
  Alcotest.(check string) "same message" from_string from_file;
  Alcotest.(check bool)
    (Printf.sprintf "message cites line %d: %s" lineno from_string)
    true
    (let prefix = Printf.sprintf "line %d:" lineno in
     String.length from_string >= String.length prefix
     && String.sub from_string 0 (String.length prefix) = prefix)

let test_load_large_trace () =
  (* Regression for the streaming path: a trace far past any in-memory
     test fixture loads line-by-line and round-trips. *)
  let big = Progen.big_trace ~family:Progen.Pc_mesh ~events:10_000 ~seed:7 in
  let tr = Bigtrace.to_trace big in
  let text = Trace_io.to_string tr in
  with_temp_file text (fun path ->
      let tr' = Trace_io.load path in
      Alcotest.(check int) "event count" 10_000 (Trace.n_events tr');
      Alcotest.(check bool) "roundtrip" true (traces_equal tr tr'))

(* ------------------------------------------------------------------ *)
(* The columnar big-trace representation. *)

let prop_bigtrace_roundtrip =
  QCheck.Test.make ~name:"Bigtrace.of_trace/to_trace round-trips" ~count:60
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          let tr' = Bigtrace.to_trace (Bigtrace.of_trace tr) in
          tr'.Trace.events = tr.Trace.events
          && Rel.equal tr'.Trace.program_order tr.Trace.program_order
          && tr'.Trace.outcome = tr.Trace.outcome
          && tr'.Trace.sem_init = tr.Trace.sem_init
          && tr'.Trace.ev_init = tr.Trace.ev_init)

let test_bigtrace_save_read () =
  let big = Progen.big_trace ~family:Progen.Server_logs ~events:5_000 ~seed:3 in
  let path = Filename.temp_file "eo_triage_test" ".eotrace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Bigtrace.save path big;
      let big' = Bigtrace.read path in
      Alcotest.(check int) "events" (Bigtrace.n_events big)
        (Bigtrace.n_events big');
      Alcotest.(check bool) "same trace" true
        (Bigtrace.to_trace big = Bigtrace.to_trace big'))

let test_generated_families_triage_clean () =
  (* Every family's planted races are certified and every benign pair is
     refuted at tier 1 — no undecided survivors at streaming scale. *)
  List.iter
    (fun family ->
      let big = Progen.big_trace ~family ~events:4_096 ~seed:11 in
      let r = Triage.races_big big in
      let name = Progen.big_family_to_string family in
      Alcotest.(check bool) (name ^ ": observed schedule replays") true
        r.Triage.observed_feasible;
      Alcotest.(check int) (name ^ ": nothing undecided") 0 r.Triage.undecided;
      Alcotest.(check bool) (name ^ ": planted races found") true
        (r.Triage.certified > 0);
      Alcotest.(check int) (name ^ ": race list matches certified count")
        r.Triage.certified
        (List.length r.Triage.races))
    [ Progen.Pc_mesh; Progen.Server_logs; Progen.Fork_join ]

(* ------------------------------------------------------------------ *)
(* Budget slicing: a starved tier escalates (counted, answer unchanged);
   a dead session budget degrades every primitive in its sound
   direction. *)

let racy_execution () =
  (* The tier-1 oracle cannot certify this race from the observed
     schedule (the V/P pairing orders the pair), so deciding it needs a
     higher tier. *)
  match
    Gen_progs.completed_trace
      (Parse.program
         "sem s = 0\n\
          proc writer { x := 1; v(s) }\n\
          proc helper { v(s) }\n\
          proc reader { p(s); x := 2 }")
      ~policy:(Sched.Replay [ 0; 0; 2; 2; 1 ])
  with
  | Some t -> Trace.to_execution t
  | None -> Alcotest.fail "fixture program deadlocked"

let test_starved_tier_escalates_not_degrades () =
  let x = racy_execution () in
  with_engine Engine.Auto (fun () ->
      let reference = race_set Engine.Packed ~jobs:1 x in
      Alcotest.(check int) "fixture has a hidden race" 1 (List.length reference);
      with_env "EO_TRIAGE_REACH_NODES" "1" (fun () ->
          let c = Counters.create () in
          let races =
            List.filter
              (fun r -> Race.is_feasible_race ~stats:c x r.Race.e1 r.Race.e2)
              (Race.conflicting_pairs x)
          in
          Alcotest.(check bool) "answers survive the starved reach tier" true
            (List.map (fun r -> (r.Race.e1, r.Race.e2)) races
            = List.map (fun r -> (r.Race.e1, r.Race.e2)) reference);
          Alcotest.(check bool) "the defeat is counted as an escalation" true
            (Counters.get c Counters.Triage_escalations > 0);
          Alcotest.(check int) "the starved tier answered nothing" 0
            (Counters.get c Counters.Triage_reach_hits)))

let test_starved_tiers_still_exact_in_session () =
  let x = racy_execution () in
  let reference = session_answers Engine.Naive x in
  with_env "EO_TRIAGE_REACH_NODES" "1" (fun () ->
      with_env "EO_TRIAGE_SAT_CONFLICTS" "1" (fun () ->
          Alcotest.(check bool)
            "auto stays exact when reach and sat slices are starved" true
            (session_answers Engine.Auto x = reference)))

let test_dead_budget_degrades_soundly () =
  let x = racy_execution () in
  with_engine Engine.Auto (fun () ->
      let budget = Budget.create ~node_budget:1 () in
      (* Exhaust it before any query runs. *)
      while not (Budget.exhausted budget) do
        ignore (Budget.poll_node budget)
      done;
      (* No oracle attached: every query must fall through to the
         budgeted tiers, which are all dead on arrival. *)
      let s = Session.of_execution ~budget ~cache:Session.no_cache x in
      (* Could-have queries degrade to false, must-have to true — the
         PR 5 degradation directions, now reached through the ladder. *)
      (match Session.exists_race_outcome s 0 3 with
      | Budget.Bound_hit false -> ()
      | Budget.Bound_hit true -> Alcotest.fail "race over-reported"
      | Budget.Exact _ -> Alcotest.fail "dead budget not reported");
      match Session.must_before_outcome s 0 4 with
      | Budget.Bound_hit true -> ()
      | Budget.Bound_hit false -> Alcotest.fail "must_before under-reported"
      | Budget.Exact _ -> Alcotest.fail "dead budget not reported")

let test_races_big_budget_truncates () =
  let big = Progen.big_trace ~family:Progen.Pc_mesh ~events:4_096 ~seed:5 in
  let budget = Budget.create ~node_budget:3 () in
  let r = Triage.races_big ~budget big in
  Alcotest.(check bool) "report is marked truncated" true r.Triage.truncated;
  Alcotest.(check bool) "only a prefix of candidates was decided" true
    (r.Triage.refuted + r.Triage.certified + r.Triage.undecided
    < r.Triage.candidates)

let suite =
  [
    qcheck prop_auto_matches_naive_sessions;
    qcheck prop_auto_matches_packed_relations;
    qcheck prop_auto_matches_race_sets;
    qcheck prop_auto_matches_sat_relations;
    qcheck prop_mhb_deciders_sound;
    qcheck prop_vclock_chb_decider_sound;
    qcheck prop_lamport_refuter_sound;
    qcheck prop_static_order_decider_sound;
    Alcotest.test_case "make clamps off-direction verdicts" `Quick
      test_make_clamps_direction;
    qcheck prop_load_matches_of_string;
    Alcotest.test_case "load error line numbers match of_string" `Quick
      test_load_error_line_numbers;
    Alcotest.test_case "streaming load of a 10k-event trace" `Quick
      test_load_large_trace;
    qcheck prop_bigtrace_roundtrip;
    Alcotest.test_case "bigtrace save/read roundtrip" `Quick
      test_bigtrace_save_read;
    Alcotest.test_case "generated families triage clean" `Quick
      test_generated_families_triage_clean;
    Alcotest.test_case "starved tier escalates, answer unchanged" `Quick
      test_starved_tier_escalates_not_degrades;
    Alcotest.test_case "starved tiers stay exact in sessions" `Quick
      test_starved_tiers_still_exact_in_session;
    Alcotest.test_case "dead budget degrades in the sound direction" `Quick
      test_dead_budget_degrades_soundly;
    Alcotest.test_case "races_big budget expiry truncates the report" `Quick
      test_races_big_budget_truncates;
  ]
