(* Unit tests for the telemetry subsystem: counter semantics, JSON
   construction, config precedence, and the report type. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_null_is_inert () =
  let c = Counters.null in
  Alcotest.(check bool) "disabled" false (Counters.enabled c);
  Counters.bump c Counters.Enum_nodes;
  Counters.add c Counters.Enum_pops 7;
  Counters.set c Counters.Classes 3;
  Counters.add_time c Counters.T_total 1.0;
  Alcotest.(check int) "bump ignored" 0 (Counters.get c Counters.Enum_nodes);
  Alcotest.(check int) "add ignored" 0 (Counters.get c Counters.Enum_pops);
  Alcotest.(check int) "set ignored" 0 (Counters.get c Counters.Classes);
  Alcotest.(check (float 0.0)) "time ignored" 0.0
    (Counters.get_time c Counters.T_total)

let test_counter_arithmetic () =
  let c = Counters.create () in
  Alcotest.(check bool) "enabled" true (Counters.enabled c);
  List.iter
    (fun k -> Alcotest.(check int) "starts at zero" 0 (Counters.get c k))
    Counters.all_keys;
  Counters.bump c Counters.Enum_nodes;
  Counters.bump c Counters.Enum_nodes;
  Counters.add c Counters.Enum_nodes 3;
  Alcotest.(check int) "bump + add" 5 (Counters.get c Counters.Enum_nodes);
  Counters.set c Counters.Classes 9;
  Counters.set c Counters.Classes 4;
  Alcotest.(check int) "set overwrites" 4 (Counters.get c Counters.Classes)

let test_timer_accumulates () =
  let c = Counters.create () in
  let v = Counters.time c Counters.T_total (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result" 42 v;
  Counters.add_time c Counters.T_total 1.5;
  Alcotest.(check bool) "time accumulated" true
    (Counters.get_time c Counters.T_total >= 1.5);
  (* A raising thunk still records its time. *)
  (try Counters.time c Counters.T_split (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "exception-safe" true
    (Counters.get_time c Counters.T_split >= 0.0)

let test_merge_into () =
  let dst = Counters.create () and src = Counters.create () in
  Counters.add dst Counters.Enum_nodes 2;
  Counters.add src Counters.Enum_nodes 5;
  Counters.add src Counters.Por_reps 1;
  Counters.add_time src Counters.T_enumerate 0.25;
  Counters.merge_into ~dst src;
  Alcotest.(check int) "counts summed" 7 (Counters.get dst Counters.Enum_nodes);
  Alcotest.(check int) "new key copied" 1 (Counters.get dst Counters.Por_reps);
  Alcotest.(check bool) "times summed" true
    (Counters.get_time dst Counters.T_enumerate >= 0.25);
  (* Merging into or from the null instance is a no-op. *)
  Counters.merge_into ~dst:Counters.null src;
  Counters.merge_into ~dst Counters.null;
  Alcotest.(check int) "null merge no-op" 7
    (Counters.get dst Counters.Enum_nodes)

let test_key_names_distinct () =
  let names = List.map Counters.key_name Counters.all_keys in
  Alcotest.(check int) "all names distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  let timer_names = List.map Counters.timer_name Counters.all_timers in
  Alcotest.(check int) "timer names distinct"
    (List.length timer_names)
    (List.length (List.sort_uniq compare timer_names))

let test_jsonout_compact () =
  let doc =
    Jsonout.Obj
      [
        ("s", Jsonout.Str "a\"b\n");
        ("i", Jsonout.Int (-3));
        ("f", Jsonout.Float 1.5);
        ("b", Jsonout.Bool true);
        ("n", Jsonout.Null);
        ("l", Jsonout.List [ Jsonout.Int 1; Jsonout.Int 2 ]);
      ]
  in
  Alcotest.(check string) "compact rendering"
    "{\"s\":\"a\\\"b\\n\",\"i\":-3,\"f\":1.500000,\"b\":true,\"n\":null,\"l\":[1,2]}"
    (Jsonout.to_string doc)

let test_jsonout_pretty () =
  let doc =
    Jsonout.Obj
      [ ("xs", Jsonout.List [ Jsonout.Int 1 ]); ("o", Jsonout.Obj []) ]
  in
  let s = Jsonout.to_string_pretty doc in
  Alcotest.(check bool) "trailing newline" true
    (String.length s > 0 && s.[String.length s - 1] = '\n');
  (* Scalar-only lists stay on one line. *)
  Alcotest.(check bool) "inline scalar list" true (contains s "\"xs\": [1]")

let test_config_precedence () =
  Alcotest.(check int) "cli wins" 7
    (Config.resolve ~cli:(Some 7) ~env:(fun () -> 3));
  Alcotest.(check int) "env thunk otherwise" 3
    (Config.resolve ~cli:None ~env:(fun () -> 3));
  (* Unset variable falls back to the default without warning. *)
  Alcotest.(check int) "lookup default" 42
    (Config.lookup ~var:"EO_NO_SUCH_VARIABLE" ~expected:"an integer"
       ~default_text:"42" ~parse:int_of_string_opt ~default:42)

(* EO_JOBS never silently clamps: non-positive values are rejected with
   a diagnostic that names the rule, malformed ones with one that names
   the expectation. *)
let test_jobs_of_string () =
  (match Config.jobs_of_string "3" with
  | Ok 3 -> ()
  | _ -> Alcotest.fail "3 should parse");
  (match Config.jobs_of_string " 4 " with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "whitespace should be trimmed");
  (match Config.jobs_of_string "0" with
  | Error msg ->
      Alcotest.(check bool) "0 rejected, not clamped" true
        (contains msg "rejecting" && contains msg "at least 1")
  | Ok j -> Alcotest.failf "0 accepted as %d" j);
  (match Config.jobs_of_string "-2" with
  | Error msg ->
      Alcotest.(check bool) "-2 rejected, not clamped" true
        (contains msg "rejecting EO_JOBS=-2")
  | Ok j -> Alcotest.failf "-2 accepted as %d" j);
  match Config.jobs_of_string "many" with
  | Error msg ->
      Alcotest.(check bool) "malformed diagnosed" true
        (contains msg "malformed" && contains msg "positive integer")
  | Ok j -> Alcotest.failf "\"many\" accepted as %d" j

(* EO_ENGINE never silently falls back: an unknown engine name is
   rejected with a diagnostic listing the valid engines, so a typo like
   "stat" cannot quietly run the packed engine instead. *)
let test_engine_of_string () =
  List.iter
    (fun name ->
      match Config.engine_of_string name with
      | Ok n -> Alcotest.(check string) (name ^ " accepted") name n
      | Error msg -> Alcotest.failf "%s rejected: %s" name msg)
    Config.engine_names;
  (match Config.engine_of_string " SAT " with
  | Ok "sat" -> ()
  | Ok n -> Alcotest.failf "\" SAT \" parsed as %s" n
  | Error _ -> Alcotest.fail "case and whitespace should be normalized");
  match Config.engine_of_string "frobnicate" with
  | Error msg ->
      Alcotest.(check bool) "unknown engine diagnosed" true
        (contains msg "rejecting EO_ENGINE=\"frobnicate\"");
      List.iter
        (fun name ->
          Alcotest.(check bool) ("lists " ^ name) true (contains msg name))
        Config.engine_names
  | Ok n -> Alcotest.failf "\"frobnicate\" accepted as %s" n

(* EO_CACHE_DIR must be absolute — a relative path would resolve against
   whatever the working directory happens to be. *)
let test_cache_dir_of_string () =
  (match Config.cache_dir_of_string "/tmp/eo-cache" with
  | Ok "/tmp/eo-cache" -> ()
  | _ -> Alcotest.fail "absolute path should parse");
  (match Config.cache_dir_of_string "relative/cache" with
  | Error msg ->
      Alcotest.(check bool) "relative rejected" true
        (contains msg "absolute path")
  | Ok d -> Alcotest.failf "relative path accepted as %s" d);
  match Config.cache_dir_of_string "  " with
  | Error msg ->
      Alcotest.(check bool) "empty diagnosed" true (contains msg "empty")
  | Ok d -> Alcotest.failf "blank accepted as %s" d

let test_cache_dir_env () =
  let with_env v f =
    let saved = Sys.getenv_opt "EO_CACHE_DIR" in
    Unix.putenv "EO_CACHE_DIR" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "EO_CACHE_DIR" (Option.value saved ~default:""))
      f
  in
  with_env "/abs/cache" (fun () ->
      Alcotest.(check (option string)) "absolute accepted" (Some "/abs/cache")
        (Config.cache_dir ()));
  with_env "not/absolute" (fun () ->
      Alcotest.(check (option string)) "relative disables caching" None
        (Config.cache_dir ()));
  with_env "" (fun () ->
      Alcotest.(check (option string)) "unset means disabled" None
        (Config.cache_dir ()))

(* EO_TIMEOUT_MS follows the EO_JOBS discipline: non-positive values
   are rejected (a zero timeout would mean "always expired"), malformed
   ones diagnosed — never silently clamped. *)
let test_timeout_of_string () =
  (match Config.timeout_of_string "250" with
  | Ok 250 -> ()
  | _ -> Alcotest.fail "250 should parse");
  (match Config.timeout_of_string " 50 " with
  | Ok 50 -> ()
  | _ -> Alcotest.fail "whitespace should be trimmed");
  (match Config.timeout_of_string "0" with
  | Error msg ->
      Alcotest.(check bool) "0 rejected, not clamped" true
        (contains msg "rejecting" && contains msg "at least 1 ms")
  | Ok ms -> Alcotest.failf "0 accepted as %d" ms);
  (match Config.timeout_of_string "-100" with
  | Error msg ->
      Alcotest.(check bool) "-100 rejected" true
        (contains msg "rejecting EO_TIMEOUT_MS=-100")
  | Ok ms -> Alcotest.failf "-100 accepted as %d" ms);
  match Config.timeout_of_string "soon" with
  | Error msg ->
      Alcotest.(check bool) "malformed diagnosed" true
        (contains msg "malformed" && contains msg "millisecond")
  | Ok ms -> Alcotest.failf "\"soon\" accepted as %d" ms

let test_timeout_env () =
  let with_env v f =
    let saved = Sys.getenv_opt "EO_TIMEOUT_MS" in
    Unix.putenv "EO_TIMEOUT_MS" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "EO_TIMEOUT_MS" (Option.value saved ~default:""))
      f
  in
  with_env "1500" (fun () ->
      Alcotest.(check (option int)) "valid accepted" (Some 1500)
        (Config.timeout_ms ()));
  with_env "never" (fun () ->
      Alcotest.(check (option int)) "invalid disables the timeout" None
        (Config.timeout_ms ()));
  with_env "" (fun () ->
      Alcotest.(check (option int)) "unset means no timeout" None
        (Config.timeout_ms ()))

(* [reset_for_testing] clears the memoized env reads, so a test can
   change EO_JOBS/EO_ENGINE mid-process and see the new value. *)
let test_reset_for_testing () =
  let saved = Sys.getenv_opt "EO_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "EO_JOBS" (Option.value saved ~default:"");
      Config.reset_for_testing ())
    (fun () ->
      Config.reset_for_testing ();
      Unix.putenv "EO_JOBS" "2";
      Alcotest.(check int) "fresh read" 2 (Config.jobs ());
      Unix.putenv "EO_JOBS" "5";
      Alcotest.(check int) "memo holds across env changes" 2 (Config.jobs ());
      Config.reset_for_testing ();
      Alcotest.(check int) "reset re-reads the environment" 5
        (Config.jobs ()))

let test_telemetry_report () =
  let tel = Telemetry.create () in
  Telemetry.set_run tel ~engine:"packed" ~jobs:3;
  Telemetry.set_split_depth tel 2;
  Telemetry.set_task_schedules tel [| 4; 1; 0 |];
  Telemetry.ensure_domains tel 3;
  Telemetry.note_domain_wall tel 1 0.5;
  Counters.bump (Telemetry.counters tel) Counters.Enum_nodes;
  Alcotest.(check string) "engine" "packed" (Telemetry.engine tel);
  Alcotest.(check int) "jobs" 3 (Telemetry.jobs tel);
  Alcotest.(check int) "split depth" 2 (Telemetry.split_depth tel);
  Alcotest.(check (array int)) "task schedules" [| 4; 1; 0 |]
    (Telemetry.task_schedules tel);
  Alcotest.(check int) "domain wall slots" 3
    (Array.length (Telemetry.domain_wall_s tel));
  (match Telemetry.to_json tel with
  | Jsonout.Obj fields ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k fields))
        [ "engine"; "jobs"; "counters"; "timers_s"; "parallel" ]
  | _ -> Alcotest.fail "to_json should be an object");
  (* timed_domain with no report runs the thunk bare. *)
  Alcotest.(check int) "timed_domain None" 5
    (Telemetry.timed_domain None 0 (fun () -> 5));
  Alcotest.(check int) "timed_domain Some" 6
    (Telemetry.timed_domain (Some tel) 0 (fun () -> 6));
  let s = Format.asprintf "%a" Telemetry.pp tel in
  Alcotest.(check bool) "pp mentions engine" true (contains s "packed")

let suite =
  [
    Alcotest.test_case "null counters are inert" `Quick test_null_is_inert;
    Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
    Alcotest.test_case "timers accumulate" `Quick test_timer_accumulates;
    Alcotest.test_case "merge_into sums" `Quick test_merge_into;
    Alcotest.test_case "JSON names distinct" `Quick test_key_names_distinct;
    Alcotest.test_case "jsonout compact" `Quick test_jsonout_compact;
    Alcotest.test_case "jsonout pretty" `Quick test_jsonout_pretty;
    Alcotest.test_case "config precedence" `Quick test_config_precedence;
    Alcotest.test_case "EO_JOBS rejects non-positive" `Quick
      test_jobs_of_string;
    Alcotest.test_case "EO_ENGINE rejects unknown engines" `Quick
      test_engine_of_string;
    Alcotest.test_case "EO_CACHE_DIR must be absolute" `Quick
      test_cache_dir_of_string;
    Alcotest.test_case "EO_CACHE_DIR environment read" `Quick
      test_cache_dir_env;
    Alcotest.test_case "EO_TIMEOUT_MS rejects non-positive" `Quick
      test_timeout_of_string;
    Alcotest.test_case "EO_TIMEOUT_MS environment read" `Quick
      test_timeout_env;
    Alcotest.test_case "reset_for_testing clears memos" `Quick
      test_reset_for_testing;
    Alcotest.test_case "telemetry report" `Quick test_telemetry_report;
  ]
