let qcheck = QCheck_alcotest.to_alcotest

let test_trivial () =
  Alcotest.(check bool) "x1 sat" true
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:1 [ [ 1 ] ]));
  Alcotest.(check bool) "x1 & ~x1 unsat" false
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:1 [ [ 1 ]; [ -1 ] ]));
  Alcotest.(check bool) "empty formula sat" true
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:3 []));
  Alcotest.(check bool) "empty clause unsat" false
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:3 [ [] ]))

let test_tautology_dropped () =
  Alcotest.(check bool) "p | ~p alone is sat" true
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:1 [ [ 1; -1 ] ]));
  Alcotest.(check bool) "tautology plus unsat core" false
    (Cdcl.is_satisfiable (Cnf.make ~num_vars:2 [ [ 1; -1 ]; [ 2 ]; [ -2 ] ]))

let test_fixed_families () =
  Alcotest.(check bool) "all sign patterns unsat" false
    (Cdcl.is_satisfiable (Sat_gen.unsat_3cnf_small ()));
  Alcotest.(check bool) "small sat" true
    (Cdcl.is_satisfiable (Sat_gen.sat_3cnf_small ()));
  Alcotest.(check bool) "tiny structures" true
    (Cdcl.is_satisfiable (Sat_gen.tiny_sat_3cnf ())
    && not (Cdcl.is_satisfiable (Sat_gen.tiny_unsat_3cnf ())))

let test_pigeonhole () =
  for n = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "pigeonhole %d unsat" n)
      false
      (Cdcl.is_satisfiable (Sat_gen.pigeonhole n))
  done

let test_stats_record_learning () =
  (* Pigeonhole 4 needs genuine conflict-driven work. *)
  let _, stats = Cdcl.solve_with_stats (Sat_gen.pigeonhole 4) in
  Alcotest.(check bool) "conflicts happened" true (stats.Cdcl.conflicts > 0);
  Alcotest.(check bool) "clauses learned" true (stats.Cdcl.learned > 0)

let test_larger_random () =
  (* Larger than DPLL-comfortable instances: 60 vars at the 4.26 ratio. *)
  for seed = 0 to 4 do
    let f = Sat_gen.random_3cnf ~seed ~num_vars:60 ~num_clauses:255 in
    (* Whatever the verdict, a SAT answer must carry a valid witness. *)
    match Cdcl.solve f with
    | Cdcl.Sat a -> Alcotest.(check bool) "witness valid" true (Cnf.eval a f)
    | Cdcl.Unsat -> ()
  done

(* The incremental interface: one solver, many assumption probes.  The
   formula (x1 | x2) & (~x1 | x3) is satisfiable under every single
   assumption except where a probe pins an unsatisfiable corner. *)
let test_assumptions_basic () =
  let f = Cnf.make ~num_vars:3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  let t = Cdcl.make f in
  (match Cdcl.solve_assuming t [] with
  | Cdcl.Sat a -> Alcotest.(check bool) "free solve valid" true (Cnf.eval a f)
  | Cdcl.Unsat -> Alcotest.fail "free solve should be sat");
  (match Cdcl.solve_assuming t [ 1; -3 ] with
  | Cdcl.Sat _ -> Alcotest.fail "x1 & ~x3 contradicts (~x1 | x3)"
  | Cdcl.Unsat -> ());
  (* The same solver stays usable after an UNSAT-under-assumptions
     answer — that is the whole point of assumption probes. *)
  (match Cdcl.solve_assuming t [ 1; 3 ] with
  | Cdcl.Sat a ->
      Alcotest.(check bool) "model valid" true (Cnf.eval a f);
      Alcotest.(check bool) "assumptions honoured" true (a.(1) && a.(3))
  | Cdcl.Unsat -> Alcotest.fail "x1 & x3 should be sat");
  match Cdcl.solve_assuming t [ -1; -2 ] with
  | Cdcl.Sat _ -> Alcotest.fail "~x1 & ~x2 contradicts (x1 | x2)"
  | Cdcl.Unsat -> ()

let test_assumptions_validated () =
  let t = Cdcl.make (Cnf.make ~num_vars:2 [ [ 1; 2 ] ]) in
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Cdcl.solve_assuming: literal out of range") (fun () ->
      ignore (Cdcl.solve_assuming t [ 0 ]));
  Alcotest.check_raises "out of range rejected"
    (Invalid_argument "Cdcl.solve_assuming: literal out of range") (fun () ->
      ignore (Cdcl.solve_assuming t [ 5 ]))

(* A permanently unsatisfiable formula answers Unsat on every probe,
   including the empty one, without crashing on repeats. *)
let test_assumptions_dead_solver () =
  let t = Cdcl.make (Cnf.make ~num_vars:2 [ [ 1 ]; [ -1 ] ]) in
  List.iter
    (fun assumptions ->
      match Cdcl.solve_assuming t assumptions with
      | Cdcl.Sat _ -> Alcotest.fail "x1 & ~x1 can never be sat"
      | Cdcl.Unsat -> ())
    [ []; [ 2 ]; [ -2 ]; [] ]

(* Differential: a batch of single-literal probes on one persistent
   solver must agree with fresh from-scratch solves of the strengthened
   formulas, learned clauses and saved phases notwithstanding. *)
let prop_assumptions_agree_with_fresh =
  QCheck.Test.make ~name:"assumption probes agree with fresh solves"
    ~count:200
    QCheck.(pair (int_range 0 10000) (int_range 10 40))
    (fun (seed, nc) ->
      let f = Sat_gen.random_3cnf ~seed ~num_vars:8 ~num_clauses:nc in
      let t = Cdcl.make f in
      List.for_all
        (fun l ->
          let incremental =
            match Cdcl.solve_assuming t [ l ] with
            | Cdcl.Sat a -> Cnf.eval a f && a.(Cnf.var l) = (l > 0)
            | Cdcl.Unsat -> not (Dpll.is_satisfiable (Cnf.make ~num_vars:8 ([ l ] :: f.Cnf.clauses)))
          in
          incremental)
        [ 1; -1; 4; -4; 8; -8 ])

let random_small_cnf =
  QCheck.make
    ~print:(fun (nv, clauses) ->
      Format.asprintf "%a" Cnf.pp (Cnf.make ~num_vars:nv clauses))
    QCheck.Gen.(
      int_range 1 7 >>= fun nv ->
      list_size (int_range 0 16)
        (list_size (int_range 0 4)
           (int_range 1 nv >>= fun v -> oneofl [ v; -v ]))
      >>= fun clauses -> return (nv, clauses))

let prop_agrees_with_dpll =
  QCheck.Test.make ~name:"CDCL agrees with DPLL" ~count:400 random_small_cnf
    (fun (nv, clauses) ->
      let f = Cnf.make ~num_vars:nv clauses in
      Cdcl.is_satisfiable f = Dpll.is_satisfiable f)

let prop_witness_valid =
  QCheck.Test.make ~name:"CDCL SAT witnesses satisfy the formula" ~count:400
    random_small_cnf (fun (nv, clauses) ->
      let f = Cnf.make ~num_vars:nv clauses in
      match Cdcl.solve f with
      | Cdcl.Sat a -> Cnf.eval a f
      | Cdcl.Unsat -> true)

let prop_medium_random_agrees =
  QCheck.Test.make ~name:"CDCL agrees with DPLL on 12-var random 3-CNF"
    ~count:60
    QCheck.(pair (int_range 0 10000) (int_range 20 60))
    (fun (seed, nc) ->
      let f = Sat_gen.random_3cnf ~seed ~num_vars:12 ~num_clauses:nc in
      Cdcl.is_satisfiable f = Dpll.is_satisfiable f)

let suite =
  [
    Alcotest.test_case "trivial" `Quick test_trivial;
    Alcotest.test_case "tautologies" `Quick test_tautology_dropped;
    Alcotest.test_case "fixed families" `Quick test_fixed_families;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
    Alcotest.test_case "stats record learning" `Quick test_stats_record_learning;
    Alcotest.test_case "larger random instances" `Quick test_larger_random;
    Alcotest.test_case "assumption probes" `Quick test_assumptions_basic;
    Alcotest.test_case "assumptions validated" `Quick
      test_assumptions_validated;
    Alcotest.test_case "dead solver stays Unsat" `Quick
      test_assumptions_dead_solver;
    qcheck prop_assumptions_agree_with_fresh;
    qcheck prop_agrees_with_dpll;
    qcheck prop_witness_valid;
    qcheck prop_medium_random_agrees;
  ]
