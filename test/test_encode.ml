(* Differential property tests for the SAT backend: the encoder
   ([Eo_encode]) against the memoized state engine pair by pair, and the
   fully routed stack (session, decide, races, theorem checkers) under
   [Engine.Sat] against the exact engines.  Every positive SAT answer
   must come with a replay-certified witness — the encoding is only
   trusted because these properties hold. *)

let qcheck = QCheck_alcotest.to_alcotest

let with_engine engine f =
  let saved = Engine.current () in
  Engine.set engine;
  Fun.protect ~finally:(fun () -> Engine.set saved) f

let small_skeleton prog =
  match Gen_progs.completed_trace prog with
  | Some t when Trace.n_events t <= 9 ->
      Some (Skeleton.of_execution (Trace.to_execution t))
  | _ -> None

let positions n s =
  let pos = Array.make n 0 in
  Array.iteri (fun i e -> pos.(e) <- i) s;
  pos

(* Encode vs Reach on one skeleton: feasibility, every could-happen-
   before pair, every race pair — witness positions included. *)
let check_encode_against_reach sk =
  let n = sk.Skeleton.n in
  let reach = Reach.create sk in
  let enc = Encode.build (Session.encode_program sk) in
  (match Encode.feasible_witness enc with
  | Some s ->
      if not (Reach.feasible_exists reach) then
        QCheck.Test.fail_report "SAT feasible, reach not";
      if not (Replay.is_feasible sk s) then
        QCheck.Test.fail_report "feasible witness rejected by replay"
  | None ->
      if Reach.feasible_exists reach then
        QCheck.Test.fail_report "reach feasible, SAT not");
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let eb = Reach.exists_before reach a b in
      (match Encode.exists_before_witness enc a b with
      | Some s ->
          if not eb then
            QCheck.Test.fail_reportf "CHB %d %d: SAT yes, reach no" a b;
          if not (Replay.is_feasible sk s) then
            QCheck.Test.fail_reportf "CHB %d %d: witness rejected" a b;
          let pos = positions n s in
          if pos.(a) >= pos.(b) then
            QCheck.Test.fail_reportf "CHB %d %d: witness misordered" a b
      | None ->
          if eb then
            QCheck.Test.fail_reportf "CHB %d %d: reach yes, SAT no" a b);
      let rc = Reach.exists_race reach a b in
      match Encode.race_witness enc a b with
      | Some (s1, s2) ->
          if not rc then
            QCheck.Test.fail_reportf "race %d %d: SAT yes, reach no" a b;
          if not (Replay.is_feasible sk s1 && Replay.is_feasible sk s2) then
            QCheck.Test.fail_reportf "race %d %d: witness rejected" a b;
          let p1 = positions n s1 and p2 = positions n s2 in
          if p1.(b) <> p1.(a) + 1 || p2.(a) <> p2.(b) + 1 then
            QCheck.Test.fail_reportf "race %d %d: not back-to-back" a b
      | None ->
          if rc then
            QCheck.Test.fail_reportf "race %d %d: reach yes, SAT no" a b
    done
  done

let prop_encode_matches_reach =
  QCheck.Test.make ~name:"Encode = Reach on every pair" ~count:40
    Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_skeleton prog <> None);
      check_encode_against_reach (Option.get (small_skeleton prog));
      true)

(* The Gen_progs grammar has one counting semaphore; Progen programs add
   binary semaphores, several semaphores and richer event-variable use,
   so the last-setter trigger encodings get exercised too. *)
let test_encode_progen () =
  let hits = ref 0 in
  for seed = 1 to 120 do
    let cfg =
      {
        Progen.default_config with
        processes = (2, 3);
        stmts_per_process = (1, 3);
        semaphores = (if seed mod 3 = 0 then 2 else 1);
        binary_semaphores = seed mod 2 = 0;
        event_variables = 1;
      }
    in
    match
      try Some (Progen.generate_completing ~seed cfg) with Failure _ -> None
    with
    | Some tr when Trace.n_events tr <= 9 ->
        incr hits;
        check_encode_against_reach
          (Skeleton.of_execution (Trace.to_execution tr))
    | _ -> ()
  done;
  Alcotest.(check bool) "enough generated programs" true (!hits >= 40)

(* The routed stack: every Table-1 relation decided under Engine.Sat
   equals the packed engine's decision, for every ordered pair.  MCW/COW
   ride the class summary whose happened-before bits come from SAT
   probes under this engine, so the summary path is covered too. *)
let prop_decide_sat_matches_packed =
  QCheck.Test.make ~name:"Decide under sat = Decide under packed" ~count:25
    Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_skeleton prog <> None);
      let sk = Option.get (small_skeleton prog) in
      let n = sk.Skeleton.n in
      let decisions engine =
        with_engine engine @@ fun () ->
        let d = Decide.of_skeleton sk in
        List.concat_map
          (fun rel ->
            List.concat
              (List.init n (fun a ->
                   List.init n (fun b ->
                       a <> b && Decide.holds d rel a b))))
          Relations.all_relations
      in
      let sat = decisions Engine.Sat and packed = decisions Engine.Packed in
      if sat <> packed then
        QCheck.Test.fail_report "relation matrices differ between engines";
      true)

let race_key (r : Race.race) = (r.Race.e1, r.Race.e2, r.Race.variables)

let prop_races_sat_matches_packed =
  QCheck.Test.make ~name:"feasible races under sat = packed" ~count:25
    Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_skeleton prog <> None);
      let sk = Option.get (small_skeleton prog) in
      let x = sk.Skeleton.execution in
      let races engine =
        with_engine engine @@ fun () ->
        List.sort compare (List.map race_key (Race.feasible_races x))
      in
      if races Engine.Sat <> races Engine.Packed then
        QCheck.Test.fail_report "race sets differ between engines";
      true)

(* Witnesses surfaced through the session API under Engine.Sat are
   replay-feasible and order the pair as asked (the session certifies
   internally; this re-checks from the outside). *)
let prop_session_witnesses =
  QCheck.Test.make ~name:"session SAT witnesses replay and order" ~count:25
    Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_skeleton prog <> None);
      let sk = Option.get (small_skeleton prog) in
      let n = sk.Skeleton.n in
      with_engine Engine.Sat @@ fun () ->
      let session = Session.create ~cache:Session.no_cache sk in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          match Session.witness_before session a b with
          | Some s ->
              if not (Replay.is_feasible sk s) then
                QCheck.Test.fail_reportf "witness %d %d infeasible" a b;
              let pos = positions n s in
              if pos.(a) >= pos.(b) then
                QCheck.Test.fail_reportf "witness %d %d misordered" a b
          | None ->
              if Session.exists_before session a b then
                QCheck.Test.fail_reportf "CHB %d %d holds but no witness" a b
        done
      done;
      true)

(* The UNSAT side at scale beyond random pairs: on the Theorem 1/3
   reduction programs, MHB(a,b) under Engine.Sat must track the DPLL
   verdict on the reduced formula — the theorem checkers compare the
   two verdicts themselves. *)
let random_tiny_3cnf =
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Cnf.pp f)
    QCheck.Gen.(
      int_range 1 2 >>= fun nv ->
      list_size (int_range 1 2)
        (list_repeat 3 (int_range 1 nv >>= fun v -> oneofl [ v; -v ]))
      >>= fun clauses -> return (Cnf.make ~num_vars:nv clauses))

let prop_theorem1_sat_engine =
  QCheck.Test.make ~name:"Theorem 1 under the sat engine" ~count:10
    random_tiny_3cnf (fun f ->
      with_engine Engine.Sat @@ fun () ->
      (Theorems.check_theorem_1 f).Theorems.agrees)

let prop_theorem3_sat_engine =
  QCheck.Test.make ~name:"Theorem 3 under the sat engine" ~count:6
    random_tiny_3cnf (fun f ->
      with_engine Engine.Sat @@ fun () ->
      (Theorems.check_theorem_3 f).Theorems.agrees)

(* Fixed formulas pin both truth values for Theorems 1 and 2 (the CHB
   side) under the SAT engine. *)
let test_theorem_fixed_sat_engine () =
  with_engine Engine.Sat @@ fun () ->
  List.iter
    (fun (name, f) ->
      List.iter
        (fun (check : Theorems.check) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: theorem %d agrees" name check.Theorems.theorem)
            true check.Theorems.agrees)
        [ Theorems.check_theorem_1 f; Theorems.check_theorem_2 f ])
    [
      ("tiny sat", Sat_gen.tiny_sat_3cnf ());
      ("tiny unsat", Sat_gen.tiny_unsat_3cnf ());
    ]

let suite =
  [
    qcheck prop_encode_matches_reach;
    Alcotest.test_case "Encode = Reach on Progen programs" `Quick
      test_encode_progen;
    qcheck prop_decide_sat_matches_packed;
    qcheck prop_races_sat_matches_packed;
    qcheck prop_session_witnesses;
    qcheck prop_theorem1_sat_engine;
    qcheck prop_theorem3_sat_engine;
    Alcotest.test_case "theorems 1-2 fixed formulas, sat engine" `Quick
      test_theorem_fixed_sat_engine;
  ]
