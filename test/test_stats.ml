(* The telemetry jobs-invariance contract, QCheck-enforced.

   Search counters are schedule-attributable: split probing is uncounted,
   the chosen split is re-walked counted, prefix replays are free, and
   per-worker counters merge in deterministic task order.  So every count
   below must be bit-identical between [jobs = 1] and [jobs = 4] — only
   the [Par_*] counters, the [Reach] memo statistics (per-worker engines
   have private memo tables) and wall-clock may differ.  For the per-pair
   race decisions even the memo statistics are invariant, because every
   pair builds fresh engines under any [jobs]. *)

let qcheck = QCheck_alcotest.to_alcotest

(* The jobs-invariant subset for the DFS-splitting entry points. *)
let invariant_keys =
  [
    Counters.Enum_nodes;
    Counters.Enum_pops;
    Counters.Enum_schedules;
    Counters.Limit_truncations;
    Counters.Por_nodes;
    Counters.Por_pops;
    Counters.Por_sleep_prunes;
    Counters.Por_indep_refinements;
    Counters.Por_reps;
    Counters.Classes;
    Counters.Reach_queries;
  ]

let counts keys tel =
  List.map (fun k -> Counters.get (Telemetry.counters tel) k) keys

let pp_counts keys tel =
  String.concat ", "
    (List.map2
       (fun k v -> Printf.sprintf "%s=%d" (Counters.key_name k) v)
       keys (counts keys tel))

let small_skeleton prog =
  match Gen_progs.completed_trace prog with
  | None -> None
  | Some tr ->
      if Trace.n_events tr > 8 then None
      else Some (Skeleton.of_execution (Trace.to_execution tr))

let check_invariant name keys run1 run4 =
  let t1 = Telemetry.create () and t4 = Telemetry.create () in
  let r1 = run1 t1 and r4 = run4 t4 in
  if counts keys t1 <> counts keys t4 then
    QCheck.Test.fail_reportf "%s counters differ:@.jobs=1: %s@.jobs=4: %s" name
      (pp_counts keys t1) (pp_counts keys t4);
  (r1, r4)

let summaries_equal (a : Relations.t) (b : Relations.t) =
  a.Relations.feasible_count = b.Relations.feasible_count
  && a.Relations.truncated = b.Relations.truncated
  && a.Relations.distinct_classes = b.Relations.distinct_classes
  && Rel.equal a.Relations.before_some b.Relations.before_some
  && Rel.equal a.Relations.comparable_some b.Relations.comparable_some
  && Rel.equal a.Relations.incomparable_some b.Relations.incomparable_some

let prop_compute_invariant =
  QCheck.Test.make ~name:"compute: counters bit-identical jobs=1 vs jobs=4"
    ~count:40 Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk ->
          let s1, s4 =
            check_invariant "compute" invariant_keys
              (fun tel -> Relations.compute ~jobs:1 ~stats:tel sk)
              (fun tel -> Relations.compute ~jobs:4 ~stats:tel sk)
          in
          summaries_equal s1 s4)

let prop_compute_reduced_invariant =
  QCheck.Test.make
    ~name:"compute_reduced: counters bit-identical jobs=1 vs jobs=4" ~count:40
    Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk ->
          let s1, s4 =
            check_invariant "compute_reduced" invariant_keys
              (fun tel -> Relations.compute_reduced ~jobs:1 ~stats:tel sk)
              (fun tel -> Relations.compute_reduced ~jobs:4 ~stats:tel sk)
          in
          summaries_equal s1 s4)

let prop_races_fully_invariant =
  QCheck.Test.make
    ~name:"feasible_races: ALL counters bit-identical jobs=1 vs jobs=4"
    ~count:40 Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 7 then true
          else
            let x = Trace.to_execution tr in
            let r1, r4 =
              check_invariant "feasible_races" Counters.all_keys
                (fun tel -> Race.feasible_races ~jobs:1 ~stats:tel x)
                (fun tel -> Race.feasible_races ~jobs:4 ~stats:tel x)
            in
            r1 = r4)

(* Enabling telemetry must not change any result (the zero-cost-when-
   disabled design would be worthless if instrumentation perturbed the
   search). *)
let prop_stats_do_not_perturb =
  QCheck.Test.make ~name:"collecting stats does not change the summary"
    ~count:40 Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk ->
          let tel = Telemetry.create () in
          summaries_equal (Relations.compute sk)
            (Relations.compute ~stats:tel sk)
          && summaries_equal
               (Relations.compute_reduced sk)
               (Relations.compute_reduced ~stats:tel sk))

(* The session layer keeps the contract: a session consumed by every
   kind of query reports bit-identical session/cache counters (and the
   invariant search counters) under any worker count. *)
let session_keys =
  [
    Counters.Session_queries;
    Counters.Session_passes;
    Counters.Cache_memory_hits;
    Counters.Cache_disk_hits;
    Counters.Cache_misses;
    Counters.Cache_stores;
  ]

let prop_session_invariant =
  QCheck.Test.make
    ~name:"session: counters bit-identical jobs=1 vs jobs=4" ~count:30
    Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk ->
          let use jobs tel =
            let s =
              Session.create ~jobs ~stats:tel ~cache:Session.no_cache sk
            in
            (Relations.of_session s, Relations.of_session_reduced s)
          in
          let (a1, b1), (a4, b4) =
            check_invariant "session" (invariant_keys @ session_keys) (use 1)
              (use 4)
          in
          summaries_equal a1 a4 && summaries_equal b1 b4)

(* Deterministic spot check on a fixture with real parallel structure:
   four independent processes give the splitter something to split. *)
let test_parallel_split_counters () =
  let prog =
    Parse.program
      "proc a { x := 1 }\nproc b { y := 1 }\nproc c { z := 1 }\nproc d { w := 1 }"
  in
  match Gen_progs.completed_trace prog with
  | None -> Alcotest.fail "fixture deadlocked"
  | Some tr ->
      let sk = Skeleton.of_execution (Trace.to_execution tr) in
      let t1 = Telemetry.create () and t4 = Telemetry.create () in
      let s1 = Relations.compute ~jobs:1 ~stats:t1 sk in
      let s4 = Relations.compute ~jobs:4 ~stats:t4 sk in
      Alcotest.(check bool) "same summary" true (summaries_equal s1 s4);
      Alcotest.(check (list int)) "invariant counters"
        (counts invariant_keys t1) (counts invariant_keys t4);
      Alcotest.(check int) "24 schedules" 24
        (Counters.get (Telemetry.counters t1) Counters.Enum_schedules);
      Alcotest.(check bool) "jobs=4 spawned tasks" true
        (Counters.get (Telemetry.counters t4) Counters.Par_tasks > 0);
      Alcotest.(check bool) "split depth recorded" true
        (Telemetry.split_depth t4 >= 0);
      Alcotest.(check int) "task sizes sum to schedule count"
        (Counters.get (Telemetry.counters t4) Counters.Enum_schedules)
        (Array.fold_left ( + ) 0 (Telemetry.task_schedules t4));
      Alcotest.(check int) "jobs=1 spawned none" 0
        (Counters.get (Telemetry.counters t1) Counters.Par_tasks)

let suite =
  [
    qcheck prop_compute_invariant;
    qcheck prop_compute_reduced_invariant;
    qcheck prop_races_fully_invariant;
    qcheck prop_stats_do_not_perturb;
    qcheck prop_session_invariant;
    Alcotest.test_case "parallel split fixture" `Quick
      test_parallel_split_counters;
  ]
