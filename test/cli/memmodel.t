The pluggable memory models end to end: `--model` (or EO_MODEL) selects
the semantics every subcommand answers under, and `eventorder
consistent` decides rf-annotated outcomes with a replayable rf/co
witness.  The store-buffering litmus — each process writes one variable
then reads the other:

  $ cat > sb.eo <<'EOF'
  > proc p0 { x := 1; assert y = 0 }
  > proc p1 { y := 1; assert x = 0 }
  > EOF

The observed (round-robin) execution's own rf is consistent under every
model:

  $ eventorder consistent sb.eo
  model: sc
  events: 4
  rf: 'assert (y = 0)' (event 2) reads 'y := 1' (event 1) on v1
  rf: 'assert (x = 0)' (event 3) reads 'x := 1' (event 0) on v0
  verdict: consistent under sc
  witness order: x := 1; y := 1; assert (y = 0); assert (x = 0)
  coherence v0: x := 1
  coherence v1: y := 1

The both-reads-see-init outcome is forbidden under sc but allowed once
stores sit in per-process buffers (tso, pso):

  $ eventorder consistent sb.eo --rf 2=init --rf 3=init
  model: sc
  events: 4
  rf: 'assert (y = 0)' (event 2) reads the initial value on v1
  rf: 'assert (x = 0)' (event 3) reads the initial value on v0
  verdict: inconsistent under sc
  reason: the saturated sc ordering constraints are cyclic
  [1]

  $ eventorder consistent sb.eo --rf 2=init --rf 3=init --model tso
  model: tso
  events: 4
  rf: 'assert (y = 0)' (event 2) reads the initial value on v1
  rf: 'assert (x = 0)' (event 3) reads the initial value on v0
  verdict: consistent under tso
  witness order: assert (y = 0); y := 1; assert (x = 0); x := 1
  coherence v0: x := 1
  coherence v1: y := 1

  $ eventorder consistent sb.eo --rf 2=init --rf 3=init --model pso
  model: pso
  events: 4
  rf: 'assert (y = 0)' (event 2) reads the initial value on v1
  rf: 'assert (x = 0)' (event 3) reads the initial value on v0
  verdict: consistent under pso
  witness order: assert (y = 0); y := 1; assert (x = 0); x := 1
  coherence v0: x := 1
  coherence v1: y := 1

Message passing separates tso from pso: the flag read sees the write
but the data read still sees the initial value — impossible while the
store buffer drains in order:

  $ cat > mp.eo <<'EOF'
  > proc writer { x := 1; y := 1 }
  > proc reader { assert y = 1; assert x = 1 }
  > EOF

  $ eventorder consistent mp.eo --rf 1=2 --rf 3=init --model tso
  model: tso
  events: 4
  rf: 'assert (y = 1)' (event 1) reads 'y := 1' (event 2) on v1
  rf: 'assert (x = 1)' (event 3) reads the initial value on v0
  verdict: inconsistent under tso
  reason: the saturated tso ordering constraints are cyclic
  [1]

  $ eventorder consistent mp.eo --rf 1=2 --rf 3=init --model pso
  model: pso
  events: 4
  rf: 'assert (y = 1)' (event 1) reads 'y := 1' (event 2) on v1
  rf: 'assert (x = 1)' (event 3) reads the initial value on v0
  verdict: consistent under pso
  witness order: y := 1; assert (y = 1); assert (x = 1); x := 1
  coherence v0: x := 1
  coherence v1: y := 1

The JSON surface carries the verdict, the rf under test and the
witness:

  $ eventorder consistent mp.eo --rf 1=2 --rf 3=init --model pso --format json
  {
    "schema": "eventorder.consistent/1",
    "events": 4,
    "model": "pso",
    "rf": [
      {
        "read": 1,
        "write": 2,
        "variable": 1
      },
      {
        "read": 3,
        "write": "init",
        "variable": 0
      }
    ],
    "verdict": "consistent",
    "witness": {
      "order": [2,1,3,0],
      "co": {
        "v0": [0],
        "v1": [2]
      }
    }
  }

The model threads through the relation analyses too: under tso the
stores may be buffered past the program-order-later reads, so MHB loses
exactly the write-to-read pairs:

  $ eventorder analyze sb.eo --format json | grep -A6 '"mhb"'
      "mhb": [
        [0,2],
        [0,3],
        [1,2],
        [1,3]
      ],
      "chb": [

  $ eventorder analyze sb.eo --model tso --format json | grep -A6 '"mhb"'
      "mhb": [
        [0,3],
        [1,2]
      ],
      "chb": [
        [0,1],
        [0,2],

The model also comes from the environment, and unknown names die with
the vocabulary on both surfaces:

  $ EO_MODEL=tso eventorder consistent sb.eo --rf 2=init --rf 3=init
  model: tso
  events: 4
  rf: 'assert (y = 0)' (event 2) reads the initial value on v1
  rf: 'assert (x = 0)' (event 3) reads the initial value on v0
  verdict: consistent under tso
  witness order: assert (y = 0); y := 1; assert (x = 0); x := 1
  coherence v0: x := 1
  coherence v1: y := 1

  $ eventorder analyze sb.eo --model bogus
  error: unknown --model "bogus" (valid models: sc, tso, pso)
  [2]

  $ eventorder analyze sb.eo --model bogus --format json
  {
    "schema": "eventorder.error/1",
    "code": "usage",
    "error": "unknown --model \"bogus\" (valid models: sc, tso, pso)"
  }
  [2]

  $ EO_MODEL=armv8 eventorder analyze sb.eo
  error: rejecting EO_MODEL="armv8" (valid models: sc, tso, pso)
  [2]

Reads-from validation — malformed pins and unknown events are usage
errors:

  $ eventorder consistent sb.eo --rf nonsense
  error: --rf expects READ=WRITE with numeric event ids (WRITE also accepts 'init'); got "nonsense"
  [2]

  $ eventorder consistent sb.eo --rf 0=init
  error: --rf: event 0 is not a shared-variable read of the trace
  [2]
