The tiered triage pipeline behind --engine auto: queries try the
polynomial one-sided deciders first and escalate only undecided
survivors through reachability, SAT and bounded enumeration, each tier
under its own budget slice.  The --stats counters expose where every
query settled, which is what this test locks.

A hidden race the observed schedule cannot certify at tier 1: the
helper's V could have served the P instead, so deciding the pair needs
the reach tier — one escalation, one reach hit.

  $ cat > racy.eo <<'EOF'
  > sem s = 0
  > proc writer { x := 1; v(s) }
  > proc helper { v(s) }
  > proc reader { p(s); x := 2 }
  > EOF

  $ eventorder races --engine auto racy.eo
  candidate conflicting pairs: 1
    race between x := 1 (event 0) and x := 2 (event 4) on v0
  apparent races (vector clock): 1
    race between x := 1 (event 0) and x := 2 (event 4) on v0
  feasible races (exact): 1
    race between x := 1 (event 0) and x := 2 (event 4) on v0
  first races (debugging frontier): 1
    race between x := 1 (event 0) and x := 2 (event 4) on v0

  $ eventorder races --engine auto --stats --format json racy.eo | grep triage
        "triage_tier_hits_approx": 0,
        "triage_tier_hits_reach": 1,
        "triage_tier_hits_sat": 0,
        "triage_tier_hits_enum": 0,
        "triage_escalations": 1,

The engine also comes from the environment, like every other engine
name:

  $ EO_ENGINE=auto eventorder races racy.eo | tail -2
  first races (debugging frontier): 1
    race between x := 1 (event 0) and x := 2 (event 4) on v0

Starving the reach tier (EO_TRIAGE_REACH_NODES is read per query) must
escalate — never degrade: the SAT tier picks the query up and the race
set is unchanged.

  $ EO_TRIAGE_REACH_NODES=1 eventorder races --engine auto --stats --format json racy.eo > starved.json
  $ grep triage starved.json
        "triage_tier_hits_approx": 0,
        "triage_tier_hits_reach": 0,
        "triage_tier_hits_sat": 1,
        "triage_tier_hits_enum": 0,
        "triage_escalations": 2,
  $ EO_TRIAGE_REACH_NODES=1 eventorder races --engine auto racy.eo | tail -2
  first races (debugging frontier): 1
    race between x := 1 (event 0) and x := 2 (event 4) on v0

The streaming path: `gen` emits a seeded trace family, and past
--max-events the auto engine answers from the columnar reader without
ever materialising an event-pair matrix.  Every planted race in the
fork/join family is certified by replaying both orders; every benign
pair is refuted by the forced-order clock; nothing is undecided.

  $ eventorder gen --family fork_join --events 256 --seed 1 -o fj.eotrace
  wrote fj.eotrace: 256 events (fork_join, seed 1)

  $ eventorder races --engine auto fj.eotrace | head -6
  events: 256
  candidate conflicting pairs: 39
  refuted by forced-order clock: 16
  undecided at streaming scale: 0
  certified races (replayed both orders): 23
    race between race (event 34) and race (event 35) on v25

  $ eventorder races --engine auto --stats --format json fj.eotrace | grep triage
        "triage_tier_hits_approx": 39,
        "triage_tier_hits_reach": 0,
        "triage_tier_hits_sat": 0,
        "triage_tier_hits_enum": 0,
        "triage_escalations": 0,

The streaming path also answers per-pair must-/could-happen-before
queries from the same tier-1 devices (--query REL:A:B, numeric ids;
repeatable), and shards the candidate triage across worker domains —
the report and the counters are identical whatever --jobs says.

  $ eventorder races --engine auto fj.eotrace --query mhb:0:100 --query chb:0:100 --query mhb:100:0 | head -4
  events: 256
  query mhb(0, 100): true
  query chb(0, 100): true
  query mhb(100, 0): false

  $ eventorder races --engine auto --jobs 4 fj.eotrace --query mhb:0:100 | head -7
  events: 256
  query mhb(0, 100): true
  candidate conflicting pairs: 39
  refuted by forced-order clock: 16
  undecided at streaming scale: 0
  certified races (replayed both orders): 23
    race between race (event 34) and race (event 35) on v25

  $ eventorder races --engine auto --jobs 4 --stats --format json fj.eotrace --query mhb:0:100 | grep triage
        "triage_tier_hits_approx": 40,
        "triage_tier_hits_reach": 0,
        "triage_tier_hits_sat": 0,
        "triage_tier_hits_enum": 0,
        "triage_escalations": 0,

Query validation dies with the vocabulary, and exact-scale runs route
per-pair questions to the batch subcommand instead:

  $ eventorder races --engine auto fj.eotrace --query pob:0:100
  error: --query expects REL:A:B with REL one of mhb, chb and A, B numeric event ids (got "pob:0:100")
  [2]
  $ eventorder races --engine auto fj.eotrace --query mhb:0:9999
  error: --query "mhb:0:9999": event ids must be in [0, 256)
  [2]
  $ eventorder races --engine auto racy.eo --query mhb:0:4
  error: --query runs on the streaming path only (a saved *.eotrace bigger than --max-events under --engine auto); use the batch subcommand for per-pair queries at exact scale
  [2]

A deadline on the streaming path degrades gracefully: partial counts
are timing-dependent, so only the stable surface is locked — the
"timeout" status, the truncation flag and the degraded exit code.

  $ eventorder gen --family pc_mesh --events 20000 --seed 2 -o pc.eotrace
  wrote pc.eotrace: 20000 events (pc_mesh, seed 2)

  $ eventorder races --engine auto --timeout 1 --format json pc.eotrace > out.json
  [3]
  $ grep -E '"(schema|status|truncated)"' out.json
    "schema": "eventorder.races_stream/1",
    "status": "timeout",
    "truncated": true,

Generator input validation:

  $ eventorder gen --family pc_mesh --events 10 -o tiny.eotrace
  error: --events must be at least 64 (got 10)
  [2]
