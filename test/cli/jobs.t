The exact engines accept a worker-domain count; results must not depend
on it.  Run the same analysis with one and two workers and diff:

  $ eventorder analyze pipeline.eo --jobs 1 > one.out
  $ eventorder analyze pipeline.eo --jobs 2 > two.out
  $ diff one.out two.out

The class-level engine too:

  $ eventorder analyze pipeline.eo --reduced --jobs 1 > one-reduced.out
  $ eventorder analyze pipeline.eo --reduced --jobs 2 > two-reduced.out
  $ diff one-reduced.out two-reduced.out

And the seed (naive) oracle engine still produces the same matrices:

  $ EO_ENGINE=naive eventorder analyze pipeline.eo > naive.out
  $ diff one.out naive.out

Invalid worker counts are rejected up front:

  $ eventorder analyze pipeline.eo --jobs 0
  error: --jobs must be at least 1 (got 0)
  [2]

A malformed EO_JOBS falls back to one worker with a warning:

  $ EO_JOBS=many eventorder analyze pipeline.eo > env.out
  warning: ignoring malformed EO_JOBS="many" (expected a positive integer); using 1
  $ diff one.out env.out
