The machine-readable surface: --format json emits one object per run with
a "schema" field naming its layout, and --stats embeds the telemetry
report.  Wall-clock fields are the only nondeterminism, so the floats are
normalized to "T" and everything else is locked exactly.

  $ eventorder analyze --stats --format json pipeline.eo | sed -E 's/[0-9]+\.[0-9]+/T/g'
  {
    "schema": "eventorder.analyze/1",
    "status": "ok",
    "events": 5,
    "labels": ["x := 1","z := 42","V(s)","P(s)","y := x"],
    "engine": "packed",
    "jobs": 1,
    "reduced": false,
    "feasible_schedules": 5,
    "truncated": false,
    "distinct_classes": 1,
    "width": 2,
    "relations": {
      "mhb": [
        [0,2],
        [0,3],
        [0,4],
        [2,3],
        [2,4],
        [3,4]
      ],
      "chb": [
        [0,1],
        [0,2],
        [0,3],
        [0,4],
        [1,0],
        [1,2],
        [1,3],
        [1,4],
        [2,1],
        [2,3],
        [2,4],
        [3,1],
        [3,4],
        [4,1]
      ],
      "mcw": [
        [0,1],
        [1,0],
        [1,2],
        [1,3],
        [1,4],
        [2,1],
        [3,1],
        [4,1]
      ],
      "ccw": [
        [0,1],
        [1,0],
        [1,2],
        [1,3],
        [1,4],
        [2,1],
        [3,1],
        [4,1]
      ],
      "mow": [
        [0,2],
        [0,3],
        [0,4],
        [2,0],
        [2,3],
        [2,4],
        [3,0],
        [3,2],
        [3,4],
        [4,0],
        [4,2],
        [4,3]
      ],
      "cow": [
        [0,2],
        [0,3],
        [0,4],
        [2,0],
        [2,3],
        [2,4],
        [3,0],
        [3,2],
        [3,4],
        [4,0],
        [4,2],
        [4,3]
      ]
    },
    "stats": {
      "engine": "packed",
      "jobs": 1,
      "counters": {
        "enum_nodes": 15,
        "enum_frontier_pops": 24,
        "enum_schedules": 5,
        "limit_truncations": 0,
        "por_nodes": 0,
        "por_frontier_pops": 0,
        "por_sleep_prunes": 0,
        "por_indep_refinements": 0,
        "por_representatives": 0,
        "distinct_classes": 1,
        "reach_queries": 0,
        "reach_memo_hits": 0,
        "reach_memo_misses": 0,
        "reach_tbl_probes": 0,
        "reach_tbl_resizes": 0,
        "par_tasks_spawned": 0,
        "par_merges": 0,
        "session_queries": 1,
        "session_passes": 1,
        "cache_memory_hits": 0,
        "cache_disk_hits": 0,
        "cache_misses": 1,
        "cache_stores": 1,
        "encoder_vars": 0,
        "encoder_clauses": 0,
        "solver_conflicts": 0,
        "solver_propagations": 0,
        "timeout_expirations": 0,
        "timeout_degraded_queries": 0,
        "triage_tier_hits_approx": 0,
        "triage_tier_hits_reach": 0,
        "triage_tier_hits_sat": 0,
        "triage_tier_hits_enum": 0,
        "triage_escalations": 0,
        "model_queries_sc": 1,
        "model_queries_tso": 0,
        "model_queries_pso": 0,
        "consistency_checks": 0,
        "consistency_fast_hits": 0,
        "consistency_sat_hits": 0
      },
      "timers_s": {
        "total": T,
        "split": T,
        "enumerate": T,
        "happened_before": T,
        "schedule_count": T
      },
      "parallel": {
        "split_depth": -1,
        "task_schedules": [],
        "domain_wall_s": []
      }
    }
  }

Under --jobs 4 the search counters are bit-identical; the diff shows
exactly the two legitimately jobs-dependent counters (tasks spawned and
accumulators merged) and nothing else:

  $ eventorder analyze --stats --format json pipeline.eo > one.json
  $ eventorder analyze --stats --format json --jobs 4 pipeline.eo > four.json
  $ sed -n '/"counters"/,/}/p' one.json > one.counters
  $ sed -n '/"counters"/,/}/p' four.json > four.counters
  $ diff one.counters four.counters && echo "counters identical"
  17,18c17,18
  <       "par_tasks_spawned": 0,
  <       "par_merges": 0,
  ---
  >       "par_tasks_spawned": 5,
  >       "par_merges": 5,
  [1]

The races schema:

  $ eventorder races --stats --format json pipeline.eo | sed -E 's/[0-9]+\.[0-9]+/T/g'
  {
    "schema": "eventorder.races/1",
    "status": "ok",
    "events": 5,
    "candidates": [
      {
        "e1": 0,
        "e2": 4,
        "labels": ["x := 1","y := x"],
        "variables": [0]
      }
    ],
    "apparent": [],
    "feasible": [],
    "first": [],
    "stats": {
      "engine": "packed",
      "jobs": 1,
      "counters": {
        "enum_nodes": 0,
        "enum_frontier_pops": 0,
        "enum_schedules": 0,
        "limit_truncations": 0,
        "por_nodes": 0,
        "por_frontier_pops": 0,
        "por_sleep_prunes": 0,
        "por_indep_refinements": 0,
        "por_representatives": 0,
        "distinct_classes": 0,
        "reach_queries": 1,
        "reach_memo_hits": 0,
        "reach_memo_misses": 0,
        "reach_tbl_probes": 0,
        "reach_tbl_resizes": 0,
        "par_tasks_spawned": 0,
        "par_merges": 0,
        "session_queries": 2,
        "session_passes": 0,
        "cache_memory_hits": 1,
        "cache_disk_hits": 0,
        "cache_misses": 1,
        "cache_stores": 1,
        "encoder_vars": 0,
        "encoder_clauses": 0,
        "solver_conflicts": 0,
        "solver_propagations": 0,
        "timeout_expirations": 0,
        "timeout_degraded_queries": 0,
        "triage_tier_hits_approx": 0,
        "triage_tier_hits_reach": 0,
        "triage_tier_hits_sat": 0,
        "triage_tier_hits_enum": 0,
        "triage_escalations": 0,
        "model_queries_sc": 2,
        "model_queries_tso": 0,
        "model_queries_pso": 0,
        "consistency_checks": 0,
        "consistency_fast_hits": 0,
        "consistency_sat_hits": 0
      },
      "timers_s": {
        "total": T,
        "split": T,
        "enumerate": T,
        "happened_before": T,
        "schedule_count": T
      },
      "parallel": {
        "split_depth": -1,
        "task_schedules": [],
        "domain_wall_s": [T]
      }
    }
  }

Text mode appends a human-readable table instead:

  $ eventorder schedules --stats pipeline.eo | sed -E 's/[0-9]+\.[0-9]+/T/g'
  events:                   5
  feasible schedules:       5
  reachable states:         10
  deadlock reachable:       false
  
  telemetry (engine=packed, jobs=1):
    enum_nodes               0
    enum_frontier_pops       0
    enum_schedules           0
    limit_truncations        0
    por_nodes                0
    por_frontier_pops        0
    por_sleep_prunes         0
    por_indep_refinements    0
    por_representatives      0
    distinct_classes         0
    reach_queries            0
    reach_memo_hits          3
    reach_memo_misses        9
    reach_tbl_probes         21
    reach_tbl_resizes        0
    par_tasks_spawned        0
    par_merges               0
    session_queries          0
    session_passes           0
    cache_memory_hits        0
    cache_disk_hits          0
    cache_misses             0
    cache_stores             0
    encoder_vars             0
    encoder_clauses          0
    solver_conflicts         0
    solver_propagations      0
    timeout_expirations      0
    timeout_degraded_queries 0
    triage_tier_hits_approx  0
    triage_tier_hits_reach   0
    triage_tier_hits_sat     0
    triage_tier_hits_enum    0
    triage_escalations       0
    model_queries_sc         0
    model_queries_tso        0
    model_queries_pso        0
    consistency_checks       0
    consistency_fast_hits    0
    consistency_sat_hits     0
    timers (s): total=T split=T enumerate=T happened_before=T schedule_count=T
