Deadline-aware analysis.  A 12-variable random 3-CNF reduces to a
program whose schedule space no exact engine can exhaust in 50ms, so
--timeout must expire on every engine.  The partial results themselves
vary with timing, so only the stable surface is locked: the exit code,
the "status" field in the JSON envelope, and whether the timeout
counters moved.

  $ cat > big.cnf <<'CNF'
  > p cnf 12 40
  > -6 3 -7 0
  > -6 10 1 0
  > 7 2 -4 0
  > -2 -4 10 0
  > -4 1 9 0
  > -2 -10 5 0
  > 10 -11 4 0
  > 1 -10 -4 0
  > 8 10 12 0
  > 4 2 10 0
  > -8 5 10 0
  > 6 -3 8 0
  > 9 10 6 0
  > -8 2 -11 0
  > -1 -5 10 0
  > 7 11 6 0
  > 2 8 -1 0
  > 7 12 -8 0
  > 3 7 9 0
  > 7 4 -3 0
  > 1 8 10 0
  > -9 -6 -10 0
  > 9 -10 -1 0
  > 11 9 7 0
  > 7 1 4 0
  > 6 -10 -1 0
  > 6 10 1 0
  > -11 5 6 0
  > 8 12 11 0
  > -6 5 8 0
  > -9 -6 -3 0
  > -5 11 2 0
  > -3 -6 4 0
  > -4 -10 -12 0
  > 4 -12 -9 0
  > 5 -8 12 0
  > 12 6 11 0
  > -6 -4 -8 0
  > -8 11 -6 0
  > -7 4 -8 0
  > CNF

  $ eventorder reduce big.cnf > prog.eo

Every engine reports the expiry the same way: "status": "timeout" in
the JSON envelope, nonzero timeout counters under --stats, exit code 3.
(still-zero counts the timeout counters that did not move — it must be
0 for all engines.)

  $ for engine in naive packed sat; do
  >   eventorder analyze --engine $engine --timeout 50 --max-events 500 --stats --format json prog.eo > out.json
  >   code=$?
  >   status=$(grep -c '"status": "timeout"' out.json)
  >   expired=$(grep -c '"timeout_expirations": 0' out.json)
  >   degraded=$(grep -c '"timeout_degraded_queries": 0' out.json)
  >   echo "$engine exit=$code timeout-status=$status still-zero=$((expired + degraded))"
  > done
  naive exit=3 timeout-status=1 still-zero=0
  packed exit=3 timeout-status=1 still-zero=0
  sat exit=3 timeout-status=1 still-zero=0

In text mode the partial results are flagged on stderr so a human
reading the tables knows they are sound approximations, not the exact
answer:

  $ eventorder analyze --timeout 50 --max-events 500 prog.eo > /dev/null
  note: --timeout expired; the results above are partial (sound approximations)
  [3]

The EO_TIMEOUT_MS environment variable is the same deadline without
touching the command line — and the --timeout flag wins when both are
given (a 1ms environment deadline would certainly expire; the flag's
generous one does not):

  $ EO_TIMEOUT_MS=50 eventorder analyze --max-events 500 --format json prog.eo > out.json
  [3]
  $ grep -c '"status": "timeout"' out.json
  1

  $ cat > tiny.eo <<'PROG'
  > proc a { x := 1 }
  > PROG
  $ EO_TIMEOUT_MS=1 eventorder analyze --timeout 60000 --format json tiny.eo | grep '"status"'
    "status": "ok",

A non-positive deadline is a usage error (exit 2, like every other bad
flag), not a timeout:

  $ eventorder analyze --timeout 0 tiny.eo
  error: --timeout must be at least 1 millisecond (got 0)
  [2]
