Error handling: syntax errors carry line numbers,

  $ cat > bad.eo <<'PROG'
  > proc main {
  >   skip
  >   ??
  > }
  > PROG

  $ eventorder analyze bad.eo
  bad.eo:3: syntax error: unexpected character '?'
  [2]


the exponential-engine guard refuses oversized traces,

  $ cat > big.eo <<'PROG'
  > proc a { x := 1; x := 2; x := 3; x := 4; x := 5; x := 6 }
  > PROG

  $ eventorder analyze --max-events 5 big.eo
  trace: 6 events, completed
    0  a            x := 1
    1  a            x := 2
    2  a            x := 3
    3  a            x := 4
    4  a            x := 5
    5  a            x := 6
  
  error: trace has 6 events; the exact engines are exponential and 6 is past the configured --max-events 5
  [2]

under --format json every such failure is a single well-formed
eventorder.error/1 object on stdout (stderr stays quiet, the exit code
stays 2), so a pipeline consuming the JSON surface never sees free-form
error text:

  $ eventorder analyze bad.eo --format json
  {
    "schema": "eventorder.error/1",
    "code": "parse",
    "error": "bad.eo:3: syntax error: unexpected character '?'"
  }
  [2]

  $ eventorder analyze big.eo --max-events 5 --format json
  {
    "schema": "eventorder.error/1",
    "code": "usage",
    "error": "trace has 6 events; the exact engines are exponential and 6 is past the configured --max-events 5"
  }
  [2]

  $ eventorder races big.eo --jobs 0 --format json
  {
    "schema": "eventorder.error/1",
    "code": "usage",
    "error": "--jobs must be at least 1 (got 0)"
  }
  [2]

unknown dot kinds are rejected,

  $ eventorder dot big.eo --kind nonsense
  error: unknown --kind nonsense
  [2]

and the explorer rejects loops instead of diverging:

  $ cat > loopy.eo <<'PROG'
  > proc a { while 1 = 1 { skip } }
  > PROG

  $ eventorder explore loopy.eo
  error: Explore: loops make the state graph infinite
  [2]
