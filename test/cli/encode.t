The encode subcommand compiles one per-pair ordering query to a
standalone DIMACS CNF instance — the same formula the sat engine probes
with assumptions, with the assumption materialized as a unit clause so
any external solver can decide it.

  $ cat > prodcons.eo <<'PROG'
  > sem s = 0
  > proc producer { x := 1; v(s) }
  > proc consumer { p(s); y := x }
  > PROG

Could-happen-before: satisfiable iff the pair can run in the asked
order.  One order variable survives per candidate pair (pairs closed
under program order and dependence are folded away), and the query
becomes the trailing unit clause:

  $ eventorder encode prodcons.eo "chb:x := 1:y := x"
  c eventorder encode chb: A = 'x := 1' (event 0), B = 'y := x' (event 3)
  c satisfiable iff A could have happened before B
  p cnf 3 3
  1 -2 0
  3 -2 0
  2 0

Must-happen-before is the refutation probe — here the asked direction's
reverse is impossible (the dependence on x forces the write first), so
the probe folds to an explicit empty clause and the instance is
trivially unsatisfiable, i.e. MHB holds:

  $ eventorder encode prodcons.eo "mhb:x := 1:y := x"
  c eventorder encode mhb: A = 'x := 1' (event 0), B = 'y := x' (event 3)
  c unsatisfiable iff A must have happened before B (given the base formula is satisfiable)
  p cnf 3 4
  0
  1 -2 0
  3 -2 0
  2 0

Could-have-been-concurrent is the two-copy formula: two feasible orders
over a common prefix running the pair back-to-back both ways:

  $ eventorder encode prodcons.eo "ccw:x := 1:y := x"
  c eventorder encode ccw: A = 'x := 1' (event 0), B = 'y := x' (event 3)
  c satisfiable iff A and B could have been concurrent
  p cnf 6 11
  1 -2 0
  3 -2 0
  2 0
  4 -5 0
  6 -5 0
  5 0
  0
  -3 0
  -6 0
  -1 0
  -1 0

Events can be named by numeric id, and relations without a
single-formula encoding are rejected with the vocabulary:

  $ eventorder encode prodcons.eo chb:3:0
  c eventorder encode chb: A = '3' (event 3), B = '0' (event 0)
  c satisfiable iff A could have happened before B
  p cnf 3 4
  0
  1 -2 0
  3 -2 0
  2 0

  $ eventorder encode prodcons.eo "mcw:x := 1:y := x"
  error: relation "mcw" has no single-formula SAT encoding (expected chb, mhb, or ccw)
  [2]

  $ eventorder encode prodcons.eo "chb:x := 1:nonsense"
  error: query "chb:x := 1:nonsense" names no event pair of the trace (labels or numeric event ids, REL:A:B)
  [2]

The sat engine decides the same queries end-to-end (--engine sat, or
EO_ENGINE=sat; every SAT witness is replay-certified before it is
believed), and an unknown engine name dies with the vocabulary instead
of silently running the default:

  $ eventorder batch prodcons.eo --engine sat "mhb:x := 1:y := x" "chb:y := x:x := 1" "ccw:P(s):V(s)"
  -- mhb:x := 1:y := x --
  'x := 1' MHB 'y := x': true
  -- chb:y := x:x := 1 --
  'y := x' CHB 'x := 1': false
  -- ccw:P(s):V(s) --
  'P(s)' CCW 'V(s)': false

  $ EO_ENGINE=frobnicate eventorder analyze prodcons.eo
  error: rejecting EO_ENGINE="frobnicate" (valid engines: naive, packed, sat, auto)
  [2]
