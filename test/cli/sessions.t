Shared analysis sessions.  The batch subcommand answers many queries —
whole-program and per-pair — from one session, so a single enumeration
pass and one reachability memo serve them all:

  $ cat > prodcons.eo <<'PROG'
  > sem s = 0
  > proc producer { x := 1; v(s) }
  > proc consumer { p(s); y := x }
  > PROG

  $ eventorder batch prodcons.eo schedules "mhb:x := 1:y := x" "ccw:P(s):V(s)" races first
  -- schedules --
  feasible schedules: 1
  -- mhb:x := 1:y := x --
  'x := 1' MHB 'y := x': true
  -- ccw:P(s):V(s) --
  'P(s)' CCW 'V(s)': false
  -- races --
  races: 0
  -- first --
  races: 0

Events can also be named by id, and unknown queries are rejected with
the full vocabulary:

  $ eventorder batch prodcons.eo chb:0:3
  -- chb:0:3 --
  '0' CHB '3': true

  $ eventorder batch prodcons.eo nonsense
  error: unknown query "nonsense" (expected relations, reduced, races, first, schedules, or REL:A:B)
  [2]

  $ eventorder batch prodcons.eo nonsense --format json
  {
    "schema": "eventorder.error/1",
    "code": "usage",
    "error": "unknown query \"nonsense\" (expected relations, reduced, races, first, schedules, or REL:A:B)"
  }
  [2]

The --cache flag persists results on disk under a canonical program
hash.  A cold run enumerates and stores (two entries: the relation
summary and the race set; the first-race refinement hits the in-process
cache):

  $ eventorder analyze prodcons.eo --all --stats --format json --cache "$PWD/cache" | grep -E '"(enum_nodes|session_queries|session_passes|cache_[a-z_]*)"'
        "enum_nodes": 4,
        "session_queries": 3,
        "session_passes": 1,
        "cache_memory_hits": 1,
        "cache_disk_hits": 0,
        "cache_misses": 2,
        "cache_stores": 2,

A warm repeat — a fresh process — answers everything from the cache
without enumerating a single node:

  $ eventorder analyze prodcons.eo --all --stats --format json --cache "$PWD/cache" | grep -E '"(enum_nodes|session_queries|session_passes|cache_[a-z_]*)"'
        "enum_nodes": 0,
        "session_queries": 3,
        "session_passes": 0,
        "cache_memory_hits": 1,
        "cache_disk_hits": 2,
        "cache_misses": 0,
        "cache_stores": 0,

Entries are versioned files keyed by hash, result kind, engine, memory
model and enumeration limit — any mismatch is a miss, never a stale
answer:

  $ ls cache | sed 's/^[0-9a-f]\{32\}/<hash>/' | sort
  <hash>.races.packed.sc.nolimit.eocache
  <hash>.summary-full.packed.sc.nolimit.eocache

A different engine misses the warmed entries and re-derives (the answers
are identical by the engine-equivalence property):

  $ EO_ENGINE=naive eventorder analyze prodcons.eo --stats --format json --cache "$PWD/cache" | grep -E '"cache_(disk_hits|misses)"'
        "cache_disk_hits": 0,
        "cache_misses": 1,

EO_CACHE_DIR must be an absolute path; a relative one is rejected with a
diagnostic rather than resolved against an unpredictable working
directory:

  $ EO_CACHE_DIR=not/absolute eventorder analyze prodcons.eo > /dev/null
  warning: rejecting EO_CACHE_DIR="not/absolute" (a cache directory must be an absolute path); on-disk caching disabled
