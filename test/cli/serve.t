The analysis daemon: one resident process holds the session cache, any
number of clients share it over newline-delimited JSON.

  $ cat > prodcons.eo <<'PROG'
  > sem s = 0
  > proc producer { x := 1; v(s) }
  > proc consumer { p(s); y := x }
  > PROG

Start a daemon on a Unix socket.  Clients retry the connect while it
comes up, so no sleep is needed:

  $ eventorder serve --socket srv.sock --workers 2 > serve.log 2>&1 &
  $ SRV=$!

  $ eventorder client --socket srv.sock --op ping
  {
    "schema": "eventorder.response/1",
    "status": "ok",
    "op": "ping"
  }

Four clients race on the same cold trace.  The server single-flights
them: exactly one pays the enumeration (enum_nodes 4), the other three
are served from the cache entry the winner filled:

  $ eventorder client --socket srv.sock prodcons.eo relations --stats > c1.json & C1=$!
  $ eventorder client --socket srv.sock prodcons.eo relations --stats > c2.json & C2=$!
  $ eventorder client --socket srv.sock prodcons.eo relations --stats > c3.json & C3=$!
  $ eventorder client --socket srv.sock prodcons.eo relations --stats > c4.json & C4=$!
  $ wait $C1 $C2 $C3 $C4
  $ grep -h '"enum_nodes"' c1.json c2.json c3.json c4.json | sort | uniq -c
        3       "enum_nodes": 0,
        1       "enum_nodes": 4,

A later client on the same trace is pure cache — zero enumeration, even
for a query set the daemon has not seen before:

  $ eventorder client --socket srv.sock prodcons.eo relations schedules --stats | grep -E '"(enum_nodes|cache_memory_hits)"'
        "enum_nodes": 0,
        "cache_memory_hits": 1,

The full wire round-trip, per-entry status included:

  $ eventorder client --socket srv.sock prodcons.eo mhb:0:3
  {
    "schema": "eventorder.response/1",
    "status": "ok",
    "op": "batch",
    "events": 4,
    "outcome": "completed",
    "program_key": "fb3275e9241805dd9bf025bf28fce0a3",
    "engine": "packed",
    "model": "sc",
    "jobs": 1,
    "results": [
      {
        "query": "mhb:0:3",
        "status": "ok",
        "relation": "mhb",
        "before": "0",
        "after": "3",
        "holds": true
      }
    ]
  }

The stats op answers inline (it never queues behind batch work) and
reports transport health:

  $ eventorder client --socket srv.sock --op stats | grep -E '"(workers|queue_depth|requests_served|overload_rejections)"'
    "workers": 2,
    "queue_depth": 0,
    "requests_served": 7,
    "overload_rejections": 0,

SIGTERM drains gracefully: the daemon finishes what it owes, logs its
lifetime total and removes the socket:

  $ kill -TERM $SRV
  $ wait $SRV
  $ cat serve.log
  serve: listening on srv.sock (2 workers)
  serve: stopped after 8 requests
  $ test -e srv.sock || echo "socket removed"
  socket removed

Backpressure is typed, not dropped: a daemon with a zero-length
admission queue rejects every batch request with a machine-readable
overload error (exit 2), while control ops still answer — and a client
can ask it to shut down:

  $ eventorder serve --socket ovl.sock --max-queue 0 > ovl.log 2>&1 &
  $ OVL=$!

  $ eventorder client --socket ovl.sock prodcons.eo relations
  {
    "schema": "eventorder.error/1",
    "code": "overload",
    "error": "server is overloaded: admission queue is full (--max-queue 0)"
  }
  [2]

  $ eventorder client --socket ovl.sock --op ping > /dev/null

  $ eventorder client --socket ovl.sock --op shutdown
  {
    "schema": "eventorder.response/1",
    "status": "ok",
    "op": "shutdown",
    "stopping": true
  }
  $ wait $OVL
  $ cat ovl.log
  serve: listening on ovl.sock (4 workers)
  serve: shutdown requested by a client; draining
  serve: stopped after 2 requests
  $ test -e ovl.sock || echo "socket removed"
  socket removed
