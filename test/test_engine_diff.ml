(* Differential tests for the packed/parallel exact engines against the
   seed (naive) implementations: identical feasible schedules, identical
   relation matrices, identical POR class structure — on every random
   program, whichever engine or worker count computes them. *)

let qcheck = QCheck_alcotest.to_alcotest

let with_engine e f =
  let saved = Engine.current () in
  Engine.set e;
  Fun.protect ~finally:(fun () -> Engine.set saved) f

let small_skeleton prog =
  match Gen_progs.completed_trace prog with
  | None -> None
  | Some tr ->
      if Trace.n_events tr > 8 then None
      else Some (Skeleton.of_execution (Trace.to_execution tr))

let schedules engine sk =
  with_engine engine (fun () -> Enumerate.all sk)

let prop_same_schedules =
  QCheck.Test.make
    ~name:"naive and packed enumerate identical schedules in order" ~count:150
    Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk -> schedules Engine.Naive sk = schedules Engine.Packed sk)

let prop_same_exists_order =
  QCheck.Test.make ~name:"naive and packed agree on exists_order" ~count:100
    Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk ->
          let n = sk.Skeleton.n in
          let ok = ref true in
          for a = 0 to n - 1 do
            for b = 0 to n - 1 do
              let naive =
                with_engine Engine.Naive (fun () ->
                    Enumerate.exists_order sk ~before:a ~after:b)
              in
              let packed =
                with_engine Engine.Packed (fun () ->
                    Enumerate.exists_order sk ~before:a ~after:b)
              in
              if naive <> packed then ok := false
            done
          done;
          !ok)

let por_classes engine sk =
  with_engine engine (fun () ->
      let classes = Hashtbl.create 64 in
      let count =
        Por.iter_representatives sk (fun schedule ->
            Hashtbl.replace classes
              (Rel.to_pairs (Pinned.po_of_schedule sk schedule))
              ())
      in
      ( count,
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) classes [])
      ))

let prop_same_por =
  QCheck.Test.make
    ~name:"naive and packed POR agree on representatives and classes"
    ~count:150 Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk -> por_classes Engine.Naive sk = por_classes Engine.Packed sk)

let prop_por_task_split =
  QCheck.Test.make
    ~name:"POR subtree tasks partition the representatives" ~count:150
    Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk ->
          with_engine Engine.Packed (fun () ->
              let n = sk.Skeleton.n in
              if n < 2 then true
              else begin
                let total = Por.count_representatives sk in
                let _, whole_classes = por_classes Engine.Packed sk in
                List.for_all
                  (fun depth ->
                    let tasks = Por.tasks sk ~depth in
                    let classes = Hashtbl.create 64 in
                    let sum =
                      List.fold_left
                        (fun acc task ->
                          acc
                          + Por.iter_task sk task (fun schedule ->
                                Hashtbl.replace classes
                                  (Rel.to_pairs
                                     (Pinned.po_of_schedule sk schedule))
                                  ()))
                        0 tasks
                    in
                    let split_classes =
                      List.sort compare
                        (Hashtbl.fold (fun k () acc -> k :: acc) classes [])
                    in
                    sum = total && split_classes = whole_classes)
                  [ 1; min 2 (n - 1) ]
              end))

let prop_parallel_count =
  QCheck.Test.make ~name:"Parallel.count matches sequential count" ~count:100
    Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk ->
          with_engine Engine.Packed (fun () ->
              Parallel.count ~jobs:2 sk = Enumerate.count sk))

let relations_equal a b =
  a.Relations.feasible_count = b.Relations.feasible_count
  && a.Relations.distinct_classes = b.Relations.distinct_classes
  && List.for_all
       (fun rel ->
         Rel.equal (Relations.to_rel a rel) (Relations.to_rel b rel))
       Relations.all_relations

let prop_relations_all_engines =
  QCheck.Test.make
    ~name:
      "compute: naive = packed = packed x2 jobs; compute_reduced likewise"
    ~count:80 Gen_progs.arbitrary_program (fun prog ->
      match small_skeleton prog with
      | None -> true
      | Some sk ->
          let naive =
            with_engine Engine.Naive (fun () -> Relations.compute sk)
          in
          let naive_red =
            with_engine Engine.Naive (fun () -> Relations.compute_reduced sk)
          in
          with_engine Engine.Packed (fun () ->
              let packed = Relations.compute sk in
              let packed_jobs = Relations.compute ~jobs:2 sk in
              let red = Relations.compute_reduced sk in
              let red_jobs = Relations.compute_reduced ~jobs:2 sk in
              relations_equal naive packed
              && relations_equal packed packed_jobs
              && relations_equal naive naive_red
              && relations_equal packed red
              && relations_equal red red_jobs))

let test_jobs_on_reference () =
  (* The reduction program from the Theorem-2 family: one deterministic,
     synchronization-heavy instance through the full parallel path. *)
  let red = Reduction_sem.build (Sat_gen.tiny_sat_3cnf ()) in
  let sk = Skeleton.of_execution (Trace.to_execution (Reduction_sem.trace red)) in
  with_engine Engine.Packed (fun () ->
      let seq = Relations.compute_reduced sk in
      let par = Relations.compute_reduced ~jobs:3 sk in
      Alcotest.(check bool) "reduced engines agree across worker counts" true
        (relations_equal seq par))

let suite =
  [
    qcheck prop_same_schedules;
    qcheck prop_same_exists_order;
    qcheck prop_same_por;
    qcheck prop_por_task_split;
    qcheck prop_parallel_count;
    qcheck prop_relations_all_engines;
    Alcotest.test_case "jobs on the reduction reference" `Quick
      test_jobs_on_reference;
  ]
