(* The Parallel fan-out's failure and budget contracts.

   A raising task must not orphan worker domains or make the surfaced
   exception depend on domain interleaving: every domain is joined and
   the lowest-indexed failing task's exception is re-raised.  A tripped
   budget must not poke holes in the result: [map] still returns a
   complete array (budget-aware tasks return partial accumulators). *)

let test_map_matches_sequential () =
  let xs = Array.init 100 (fun i -> i) in
  let f i = (i * i) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        (Array.map f xs)
        (Parallel.map ~jobs f xs))
    [ 1; 2; 4 ]

let test_raising_task_deterministic () =
  (* Tasks 8, 11 and 17 raise; whatever the interleaving, the exception
     of task 8 — the lowest index — must surface, every time. *)
  let xs = Array.init 20 (fun i -> i) in
  let f i =
    if i = 8 || i = 11 || i = 17 then failwith (Printf.sprintf "task %d" i)
    else i
  in
  for round = 1 to 20 do
    match Parallel.map ~jobs:4 f xs with
    | _ -> Alcotest.fail "exception swallowed"
    | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "round %d" round)
          "task 8" msg
  done

let test_raising_task_sequential_path () =
  let xs = Array.init 6 (fun i -> i) in
  let f i = if i >= 2 then failwith (Printf.sprintf "task %d" i) else i in
  match Parallel.map ~jobs:1 f xs with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure msg -> Alcotest.(check string) "lowest" "task 2" msg

let test_budget_map_returns_total_array () =
  (* Trip the budget before the fan-out even starts: a budget-aware task
     sees exhaustion on its first poll and returns its (empty) partial
     accumulator, but [map] still claims and returns every slot. *)
  let budget = Budget.create ~node_budget:1000 () in
  Budget.cancel budget;
  let xs = Array.init 32 (fun i -> i) in
  let f i = if Budget.exhausted budget then -1 else i in
  let ys = Parallel.map ~budget ~jobs:4 f xs in
  Alcotest.(check int) "total length" 32 (Array.length ys);
  Array.iter
    (fun y -> Alcotest.(check int) "partial accumulator" (-1) y)
    ys

let test_budget_deadline_between_tasks () =
  (* Workers re-check the wall clock between tasks, so even tasks that
     never poll observe a passed deadline: later tasks see the shared
     trip flag. *)
  let budget = Budget.create ~timeout_ms:1 () in
  let xs = Array.init 16 (fun i -> i) in
  let f _ =
    Unix.sleepf 0.002;
    Budget.exhausted budget
  in
  let ys = Parallel.map ~budget ~jobs:2 f xs in
  Alcotest.(check int) "total length" 16 (Array.length ys);
  Alcotest.(check bool) "deadline observed" true (Budget.exhausted budget);
  Alcotest.(check bool) "some task saw the trip" true
    (Array.exists (fun b -> b) ys)

let suite =
  [
    Alcotest.test_case "map = Array.map" `Quick test_map_matches_sequential;
    Alcotest.test_case "lowest-index exception wins" `Quick
      test_raising_task_deterministic;
    Alcotest.test_case "sequential path raises too" `Quick
      test_raising_task_sequential_path;
    Alcotest.test_case "tripped budget keeps the array total" `Quick
      test_budget_map_returns_total_array;
    Alcotest.test_case "deadline observed between tasks" `Quick
      test_budget_deadline_between_tasks;
  ]
