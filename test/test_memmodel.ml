(* The pluggable memory-model layer: the [Sc] instance must be
   differentially indistinguishable from the legacy F1–F3 semantics
   across every relation, session primitive, engine and job count; the
   [Tso]/[Pso] instances must decide the classic litmus shapes the way
   the store-buffer semantics says; and the rf/co consistency checker's
   polynomial tiers must agree with its own CNF fragment under the
   in-repo CDCL.  Also the EO_MODEL configuration contract. *)

let qcheck = QCheck_alcotest.to_alcotest

let with_model m f =
  let saved = Memmodel.current () in
  Memmodel.set m;
  Fun.protect ~finally:(fun () -> Memmodel.set saved) f

let with_engine e f =
  let saved = Engine.current () in
  Engine.set e;
  Fun.protect ~finally:(fun () -> Engine.set saved) f

(* EO_MODEL is memoized in [Config]; a test that touches it must drop
   the memo on the way in (to see its own value) and on the way out (so
   later suites re-read the real environment). *)
let with_env var value f =
  let saved = Sys.getenv_opt var in
  Unix.putenv var value;
  Config.reset_for_testing ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv var (Option.value saved ~default:"");
      Config.reset_for_testing ())
    f

let small_execution prog =
  match Gen_progs.completed_trace prog with
  | None -> None
  | Some tr ->
      if Trace.n_events tr > 8 then None else Some (Trace.to_execution tr)

let fresh_session x = Session.of_execution ~cache:Session.no_cache x

(* ------------------------------------------------------------------ *)
(* Differential: under [Sc] every engine and job count answers every
   session primitive and relation exactly as the legacy (model-untouched)
   path does — the model layer must be invisible at its default. *)

let session_answers engine x =
  with_engine engine (fun () ->
      let s = fresh_session x in
      if engine = Engine.Auto then Triage.attach s;
      let n = (Session.skeleton s).Skeleton.n in
      let pairs = ref [] in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          pairs :=
            ( Session.exists_before s a b,
              Session.must_before s a b,
              Session.exists_race s a b )
            :: !pairs
        done
      done;
      (Session.feasible_exists s, List.rev !pairs))

let relation_matrix engine x =
  with_engine engine (fun () ->
      let s = fresh_session x in
      let d = Decide.of_session s in
      let n = (Session.skeleton s).Skeleton.n in
      List.map
        (fun r ->
          let m = ref [] in
          for a = 0 to n - 1 do
            for b = 0 to n - 1 do
              m := Decide.holds d r a b :: !m
            done
          done;
          (r, !m))
        Relations.all_relations)

let prop_sc_is_legacy_relations =
  QCheck.Test.make
    ~name:"explicit --model sc ≡ legacy default on all six relations"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let legacy = relation_matrix Engine.Packed x in
          with_model Memmodel.Sc (fun () ->
              relation_matrix Engine.Packed x = legacy
              && relation_matrix Engine.Naive x = legacy))

let prop_sc_is_legacy_sessions =
  QCheck.Test.make
    ~name:"explicit --model sc ≡ legacy on session primitives (all engines)"
    ~count:40 Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let legacy = session_answers Engine.Naive x in
          with_model Memmodel.Sc (fun () ->
              List.for_all
                (fun e -> session_answers e x = legacy)
                [ Engine.Naive; Engine.Packed; Engine.Sat; Engine.Auto ]))

let prop_sc_is_legacy_races =
  QCheck.Test.make
    ~name:"explicit --model sc ≡ legacy on race sets (jobs 1 and 4)"
    ~count:40 Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let legacy = Race.feasible_races ~jobs:1 x in
          with_model Memmodel.Sc (fun () ->
              Race.feasible_races ~jobs:1 x = legacy
              && Race.feasible_races ~jobs:4 x = legacy
              && with_engine Engine.Auto (fun () ->
                     Race.feasible_races ~jobs:1 x = legacy
                     && Race.feasible_races ~jobs:4 x = legacy)))

(* ------------------------------------------------------------------ *)
(* The preserved-program-order relation: always inside the program-order
   closure, exactly the closure under [Sc], and never dropping a pair
   whose endpoints the model fences. *)

let prop_ppo_contract =
  QCheck.Test.make ~name:"ppo ⊆ po⁺, with equality under sc" ~count:80
    Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let po = Execution.po_closure x in
          Rel.equal (Memmodel.ppo Memmodel.Sc x) po
          && List.for_all
               (fun m ->
                 let ppo = Memmodel.ppo m x in
                 Rel.subset ppo po
                 && List.for_all
                      (fun (a, b) ->
                        Memmodel.enforced m x.Execution.events.(a)
                          x.Execution.events.(b)
                        = false
                        || Rel.mem ppo a b)
                      (Rel.to_pairs po))
               Memmodel.all)

(* ------------------------------------------------------------------ *)
(* Litmus outcomes: the acceptance matrix for SB and MP. *)

let is_consistent ~model c =
  match Candidate.check ~model c with
  | Candidate.Consistent w -> (
      (* every positive verdict must replay *)
      match Candidate.check_witness ~model c w.Candidate.order with
      | Ok _ -> true
      | Error msg -> Alcotest.failf "witness rejected on replay: %s" msg)
  | Candidate.Inconsistent _ -> false

let test_litmus_sb () =
  let c = Litmus.sb () in
  Alcotest.(check bool) "SB forbidden under sc" false
    (is_consistent ~model:Memmodel.Sc c);
  Alcotest.(check bool) "SB allowed under tso" true
    (is_consistent ~model:Memmodel.Tso c);
  Alcotest.(check bool) "SB allowed under pso" true
    (is_consistent ~model:Memmodel.Pso c)

let test_litmus_mp () =
  let c = Litmus.mp () in
  Alcotest.(check bool) "MP stale read forbidden under sc" false
    (is_consistent ~model:Memmodel.Sc c);
  Alcotest.(check bool) "MP stale read forbidden under tso (FIFO buffer)"
    false
    (is_consistent ~model:Memmodel.Tso c);
  Alcotest.(check bool) "MP stale read allowed under pso" true
    (is_consistent ~model:Memmodel.Pso c)

let test_litmus_observed_rf () =
  List.iter
    (fun (name, x) ->
      let c = Candidate.make x in
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "%s observed rf consistent under %s" name
               (Memmodel.to_string m))
            true
            (is_consistent ~model:m c))
        Memmodel.all)
    [ ("SB", Litmus.sb_execution ()); ("MP", Litmus.mp_execution ()) ]

(* The feasibility side of the same discrimination: TSO stops enforcing
   a pure write before its process's later pure read, so MHB over the SB
   shape loses exactly the two write-to-read program-order pairs. *)
let test_litmus_relations_discriminate () =
  let x = Litmus.sb_execution () in
  let mhb model a b =
    with_model model (fun () ->
        let d = Decide.of_session (fresh_session x) in
        Decide.holds d Relations.MHB a b)
  in
  Alcotest.(check bool) "sc: x:=1 MHB r y (program order)" true
    (mhb Memmodel.Sc 0 1);
  Alcotest.(check bool) "tso: store buffered past the read" false
    (mhb Memmodel.Tso 0 1);
  Alcotest.(check bool) "pso: store buffered past the read" false
    (mhb Memmodel.Pso 0 1);
  let y = Litmus.mp_execution () in
  let mhb_mp model a b =
    with_model model (fun () ->
        let d = Decide.of_session (fresh_session y) in
        Decide.holds d Relations.MHB a b)
  in
  Alcotest.(check bool) "tso: write-to-write stays ordered (FIFO)" true
    (mhb_mp Memmodel.Tso 0 1);
  Alcotest.(check bool) "pso: independent writes drain out of order" false
    (mhb_mp Memmodel.Pso 0 1)

(* ------------------------------------------------------------------ *)
(* Checker internals: observed executions are always explainable, and
   the polynomial tiers agree with the CNF fragment on arbitrary
   (possibly impossible) rf perturbations. *)

let prop_observed_rf_consistent =
  QCheck.Test.make
    ~name:"every observed execution's rf is consistent under every model"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      match small_execution prog with
      | None -> true
      | Some x ->
          let c = Candidate.make x in
          List.for_all (fun m -> is_consistent ~model:m c) Memmodel.all)

let writers_of_var x v =
  Array.to_list x.Execution.events
  |> List.filter_map (fun (e : Event.t) ->
         if List.mem v e.Event.writes then Some e.Event.id else None)

(* Rotate each read's source through [init :: writers of its variable],
   offset by a generated seed: a deterministic sweep over rf assignments
   the interpreter could never produce. *)
let perturb_rf x seed =
  List.mapi
    (fun i (edge : Candidate.rf_edge) ->
      let choices = -1 :: writers_of_var x edge.Candidate.var in
      let k = (seed + i) mod List.length choices in
      { edge with Candidate.write = List.nth choices k })
    (Candidate.infer_rf x)

let prop_tiers_agree_with_cnf =
  QCheck.Test.make
    ~name:"saturation/greedy verdicts agree with the CNF fragment"
    ~count:60
    QCheck.(pair Gen_progs.arbitrary_program small_nat)
    (fun (prog, seed) ->
      match small_execution prog with
      | None -> true
      | Some x -> (
          match Candidate.make ~rf:(perturb_rf x seed) x with
          | exception Candidate.Ill_formed _ -> true
          | c ->
              List.for_all
                (fun m ->
                  let cnf, _lit = Candidate.cnf_fragment ~model:m c in
                  let sat =
                    match Cdcl.solve cnf with
                    | Cdcl.Sat _ -> true
                    | Cdcl.Unsat -> false
                  in
                  is_consistent ~model:m c = sat)
                Memmodel.all))

let test_consistency_counters () =
  let c = Counters.create () in
  ignore (Candidate.check ~stats:c ~model:Memmodel.Sc (Litmus.sb ()));
  ignore (Candidate.check ~stats:c ~model:Memmodel.Tso (Litmus.sb ()));
  Alcotest.(check int) "two checks counted" 2
    (Counters.get c Counters.Consistency_checks);
  Alcotest.(check int) "every verdict lands in exactly one tier counter" 2
    (Counters.get c Counters.Consistency_fast_hits
    + Counters.get c Counters.Consistency_sat_hits)

let test_model_query_counters () =
  let t = Telemetry.create () in
  let x = Litmus.sb_execution () in
  with_model Memmodel.Tso (fun () ->
      let s = Session.of_execution ~stats:t ~cache:Session.no_cache x in
      ignore (Session.must_before s 0 1));
  let c = Telemetry.counters t in
  Alcotest.(check int) "query attributed to the tso counter" 1
    (Counters.get c Counters.Model_queries_tso);
  Alcotest.(check int) "no sc attribution" 0
    (Counters.get c Counters.Model_queries_sc)

(* ------------------------------------------------------------------ *)
(* The EO_MODEL configuration contract (mirrors EO_ENGINE): unknown
   names are rejected with the full vocabulary, never silently mapped. *)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_model_of_string () =
  List.iter
    (fun name ->
      Alcotest.(check (result string string))
        name (Ok name)
        (Config.model_of_string name))
    Config.model_names;
  Alcotest.(check (result string string))
    "case and whitespace folded" (Ok "tso")
    (Config.model_of_string "  TSO ");
  (match Config.model_of_string "x86" with
  | Ok _ -> Alcotest.fail "unknown model accepted"
  | Error msg ->
      Alcotest.(check bool) "diagnostic names the offender" true
        (contains ~sub:"\"x86\"" msg);
      Alcotest.(check bool) "diagnostic lists the vocabulary" true
        (contains ~sub:"sc, tso, pso" msg));
  Alcotest.(check (list string))
    "typed vocabulary = config vocabulary" Config.model_names Memmodel.names;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Memmodel.to_string m ^ " round-trips") true
        (Memmodel.of_string (Memmodel.to_string m) = Some m))
    Memmodel.all;
  Alcotest.(check bool) "of_string rejects outside the vocabulary" true
    (Memmodel.of_string "x86" = None)

let test_model_env () =
  with_env "EO_MODEL" "pso" (fun () ->
      Alcotest.(check string) "EO_MODEL selects the name" "pso"
        (Config.model ());
      Alcotest.(check bool) "typed default follows the env" true
        (Memmodel.default_of_env () = Memmodel.Pso));
  with_env "EO_MODEL" "weird" (fun () ->
      Alcotest.(check string) "bad EO_MODEL warns and defaults" "sc"
        (Config.model ());
      Alcotest.(check bool) "typed default degrades to sc" true
        (Memmodel.default_of_env () = Memmodel.Sc))

let suite =
  [
    qcheck prop_sc_is_legacy_relations;
    qcheck prop_sc_is_legacy_sessions;
    qcheck prop_sc_is_legacy_races;
    qcheck prop_ppo_contract;
    qcheck prop_observed_rf_consistent;
    qcheck prop_tiers_agree_with_cnf;
    Alcotest.test_case "litmus SB verdicts" `Quick test_litmus_sb;
    Alcotest.test_case "litmus MP verdicts" `Quick test_litmus_mp;
    Alcotest.test_case "observed rf always consistent" `Quick
      test_litmus_observed_rf;
    Alcotest.test_case "relations discriminate models" `Quick
      test_litmus_relations_discriminate;
    Alcotest.test_case "consistency counters" `Quick
      test_consistency_counters;
    Alcotest.test_case "per-model query counters" `Quick
      test_model_query_counters;
    Alcotest.test_case "EO_MODEL parser" `Quick test_model_of_string;
    Alcotest.test_case "EO_MODEL environment" `Quick test_model_env;
  ]
