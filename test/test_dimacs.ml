let sample = "c a comment\np cnf 3 2\n1 -2 3 0\nc mid comment\n-1 2 0\n"

let test_parse () =
  let f = Dimacs.parse sample in
  Alcotest.(check int) "vars" 3 f.Cnf.num_vars;
  Alcotest.(check int) "clauses" 2 (Cnf.num_clauses f);
  Alcotest.(check bool) "first clause" true
    (List.mem [ 1; -2; 3 ] f.Cnf.clauses)

let test_clause_spanning_lines () =
  let f = Dimacs.parse "p cnf 3 1\n1\n-2\n3 0\n" in
  Alcotest.(check bool) "clause assembled" true
    (f.Cnf.clauses = [ [ 1; -2; 3 ] ])

let test_roundtrip () =
  let f = Sat_gen.random_3cnf ~seed:9 ~num_vars:6 ~num_clauses:12 in
  let f' = Dimacs.parse (Dimacs.to_string f) in
  Alcotest.(check bool) "clauses preserved" true (f.Cnf.clauses = f'.Cnf.clauses);
  Alcotest.(check int) "vars preserved" f.Cnf.num_vars f'.Cnf.num_vars

(* Tab-separated files and [p\tcnf] headers are common in the wild: any
   ASCII whitespace must separate fields, not just the space character. *)
let test_tab_separated () =
  let f = Dimacs.parse "p\tcnf\t3\t2\n1\t-2\t3\t0\n-1\t 2 \t0\r\n" in
  Alcotest.(check int) "vars" 3 f.Cnf.num_vars;
  Alcotest.(check bool) "clauses" true
    (f.Cnf.clauses = [ [ 1; -2; 3 ]; [ -1; 2 ] ])

(* SATLIB benchmark files end with a "%" marker followed by a lone "0";
   everything after the marker must be ignored. *)
let test_percent_end_marker () =
  let f = Dimacs.parse "p cnf 2 1\n1 -2 0\n%\n0\n\nthis is not dimacs\n" in
  Alcotest.(check bool) "clauses before the marker kept" true
    (f.Cnf.clauses = [ [ 1; -2 ] ]);
  (* The marker must not hide a missing header or an open clause. *)
  (match Dimacs.parse "p cnf 2 1\n1 -2\n%\n0\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "open clause at the marker should fail");
  match Dimacs.parse "%\n0\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "marker without header should fail"

let expect_failure name input =
  Alcotest.test_case name `Quick (fun () ->
      match Dimacs.parse input with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected parse failure")

let suite =
  [
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "clause spanning lines" `Quick test_clause_spanning_lines;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "tab-separated fields" `Quick test_tab_separated;
    Alcotest.test_case "% end-of-file marker" `Quick test_percent_end_marker;
    expect_failure "missing header" "1 2 0\n";
    expect_failure "bad header" "p cnf x y\n";
    expect_failure "unterminated clause" "p cnf 2 1\n1 2\n";
    expect_failure "wrong clause count" "p cnf 2 2\n1 0\n";
    expect_failure "duplicate header" "p cnf 1 0\np cnf 1 0\n";
    expect_failure "garbage token" "p cnf 1 1\none 0\n";
  ]
