(* The request-API layer is the one dispatcher both the [batch]
   subcommand and the analysis server route through, so its contract is
   differential: whatever arrives as an [eventorder.request/1] line must
   produce byte-identical results to the in-process [Api.answers] path,
   which in turn must agree with the legacy one-shot analyses.  Plus the
   hand-written JSON parser, which the server trusts with untrusted
   bytes, round-trips everything [Jsonout] can print and rejects the
   classic malformed shapes. *)

let qcheck = QCheck_alcotest.to_alcotest
let small_execution = Test_session.small_execution
let same_summary = Test_session.same_summary
let same_races = Test_session.same_races
let with_engine = Test_session.with_engine

(* ------------------------------------------------------------------ *)
(* Jsonin: parse (print doc) = doc                                     *)
(* ------------------------------------------------------------------ *)

(* Floats are excluded: Jsonout prints them with a fixed format, so the
   round-trip holds only up to formatting.  Everything else must be
   exact. *)
let json_gen =
  let open QCheck.Gen in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let str = string_size ~gen:printable (int_bound 8) in
  let scalar =
    oneof
      [
        map (fun n -> Jsonout.Int n) small_signed_int;
        map (fun s -> Jsonout.Str s) str;
        map (fun b -> Jsonout.Bool b) bool;
        return Jsonout.Null;
      ]
  in
  sized_size (int_bound 8)
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (2, scalar);
               ( 1,
                 map
                   (fun l -> Jsonout.List l)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun l -> Jsonout.Obj l)
                   (list_size (int_bound 4) (pair key (self (n / 2)))) );
             ])

let arbitrary_json =
  QCheck.make ~print:Jsonout.to_string json_gen

let test_jsonin_roundtrip =
  QCheck.Test.make ~name:"Jsonin.parse inverts Jsonout printing" ~count:200
    arbitrary_json (fun doc ->
      (match Jsonin.parse (Jsonout.to_string doc) with
      | Ok v when v = doc -> ()
      | Ok _ -> QCheck.Test.fail_reportf "compact round-trip changed the doc"
      | Error e -> QCheck.Test.fail_reportf "compact rejected: %s" e);
      (match Jsonin.parse (Jsonout.to_string_pretty doc) with
      | Ok v when v = doc -> ()
      | Ok _ -> QCheck.Test.fail_reportf "pretty round-trip changed the doc"
      | Error e -> QCheck.Test.fail_reportf "pretty rejected: %s" e);
      true)

let ok_doc s =
  match Jsonin.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "%S rejected: %s" s e

let rejects s =
  match Jsonin.parse s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%S should have been rejected" s

let test_jsonin_edges () =
  (* Every escape form, including a surrogate pair, decodes to UTF-8. *)
  (match ok_doc {|"a\"b\\c\/dAé😀\n\t"|} with
  | Jsonout.Str s ->
      Alcotest.(check string)
        "escapes" "a\"b\\c/dA\xc3\xa9\xf0\x9f\x98\x80\n\t" s
  | _ -> Alcotest.fail "escape test: not a string");
  Alcotest.(check bool)
    "numbers" true
    (ok_doc "[-0, 42, 3.5, 1e3]"
    = Jsonout.List
        [ Jsonout.Int 0; Jsonout.Int 42; Jsonout.Float 3.5; Jsonout.Float 1e3 ]);
  (* Integers past the native range degrade to float, not an error. *)
  (match ok_doc "123456789123456789123456789" with
  | Jsonout.Float _ -> ()
  | _ -> Alcotest.fail "big integer should parse as a float");
  Alcotest.(check bool)
    "empty containers" true
    (ok_doc " { } " = Jsonout.Obj [] && ok_doc " [ ] " = Jsonout.List []);
  (* Malformed shapes the server must survive. *)
  rejects "";
  rejects "{";
  rejects "true x";
  rejects "\"a\nb\"" (* raw control byte inside a string *);
  rejects {|"\ud800"|} (* lone high surrogate *);
  rejects {|"\udc00"|} (* lone low surrogate *);
  rejects {|"\ud83dx"|} (* high surrogate without its pair *);
  rejects {|"\q"|};
  (* The depth cap turns a nesting bomb into an error, not a stack
     overflow; sane nesting stays fine. *)
  rejects (String.make 600 '[' ^ String.make 600 ']');
  ignore (ok_doc (String.make 100 '[' ^ String.make 100 ']'))

(* ------------------------------------------------------------------ *)
(* Api.answers = the legacy one-shot analyses                          *)
(* ------------------------------------------------------------------ *)

let fixed_queries = [ "relations"; "reduced"; "races"; "first"; "schedules" ]

let test_answers_match_legacy =
  QCheck.Test.make ~name:"Api.answers = legacy one-shot analyses" ~count:20
    Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      QCheck.assume (Gen_progs.completed_trace prog <> None);
      let trace = Option.get (Gen_progs.completed_trace prog) in
      let x = Trace.to_execution trace in
      let sk = Skeleton.of_execution x in
      let ref_full = Relations.compute sk in
      let ref_reduced = Relations.compute_reduced sk in
      let ref_races = Race.feasible_races x in
      let ref_first = Race.first_races x in
      List.iter
        (fun engine ->
          with_engine engine @@ fun () ->
          let name = Engine.to_string engine in
          let session = Session.of_execution ~cache:Session.no_cache x in
          let results = Api.answers session trace x fixed_queries in
          List.iter
            (fun (r : Api.result) ->
              if r.Api.timed_out then
                QCheck.Test.fail_reportf "%s: %s timed out without a deadline"
                  name r.Api.query;
              match (r.Api.query, r.Api.answer) with
              | "relations", Api.Summary s -> same_summary name ref_full s
              | "reduced", Api.Summary s -> same_summary name ref_reduced s
              | "races", Api.Race_list l -> same_races name ref_races l
              | "first", Api.Race_list l -> same_races name ref_first l
              | "schedules", Api.Count n ->
                  if n <> ref_full.Relations.feasible_count then
                    QCheck.Test.fail_reportf "%s: schedules %d vs %d" name n
                      ref_full.Relations.feasible_count
              | q, _ ->
                  QCheck.Test.fail_reportf "%s: %s answered the wrong shape"
                    name q)
            results)
        [ Engine.Naive; Engine.Packed ];
      true)

let test_pair_queries_match_decide =
  QCheck.Test.make ~name:"Api pair queries = Decide across engines" ~count:12
    Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      QCheck.assume (Gen_progs.completed_trace prog <> None);
      let trace = Option.get (Gen_progs.completed_trace prog) in
      let x = Trace.to_execution trace in
      let n = Execution.n_events x in
      QCheck.assume (n >= 2);
      let a = 0 and b = n - 1 in
      let queries =
        List.map
          (fun rel -> Printf.sprintf "%s:%d:%d" (Api.relation_key rel) a b)
          Relations.all_relations
      in
      List.iter
        (fun engine ->
          with_engine engine @@ fun () ->
          let name = Engine.to_string engine in
          let d = Decide.create x in
          let session = Session.of_execution ~cache:Session.no_cache x in
          let results = Api.answers session trace x queries in
          List.iter2
            (fun rel (r : Api.result) ->
              match r.Api.answer with
              | Api.Holds { holds; _ } ->
                  if holds <> Decide.holds d rel a b then
                    QCheck.Test.fail_reportf "%s: %s:%d:%d disagrees with \
                                              Decide"
                      name (Api.relation_key rel) a b
              | _ ->
                  QCheck.Test.fail_reportf "%s: pair query answered the \
                                            wrong shape" name)
            Relations.all_relations results)
        [ Engine.Naive; Engine.Packed; Engine.Sat ];
      true)

(* ------------------------------------------------------------------ *)
(* handle_line (the wire path) = Api.answers (the in-process path)     *)
(* ------------------------------------------------------------------ *)

let test_config : Api.config =
  {
    Api.engine = None;
    model = None;
    limit = None;
    jobs = 2;
    max_events = 40;
    timeout_ms = None;
    cache = Session.no_cache;
  }

let obj_field doc name =
  match doc with
  | Jsonout.Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field doc name =
  match obj_field doc name with Some (Jsonout.Str s) -> Some s | _ -> None

let request_line ?engine ~trace queries =
  Jsonout.to_string
    (Jsonout.Obj
       ([ ("schema", Jsonout.Str "eventorder.request/1");
          ("id", Jsonout.Int 7);
          ("trace", Jsonout.Str (Trace_io.to_string trace));
          ( "queries",
            Jsonout.List (List.map (fun q -> Jsonout.Str q) queries) );
        ]
       @ match engine with
         | Some e -> [ ("engine", Jsonout.Str (Engine.to_string e)) ]
         | None -> []))

let test_handle_line_matches_answers =
  QCheck.Test.make
    ~name:"handle_line response results = direct Api.answers JSON" ~count:15
    Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      QCheck.assume (Gen_progs.completed_trace prog <> None);
      let trace = Option.get (Gen_progs.completed_trace prog) in
      let x = Trace.to_execution trace in
      let queries = fixed_queries @ [ "mhb:0:0" ] in
      with_engine (Engine.current ()) @@ fun () ->
      let h =
        Api.handle_line test_config
          (request_line ~engine:Engine.Packed ~trace queries)
      in
      if h.Api.shutdown then
        QCheck.Test.fail_reportf "a batch request asked for shutdown";
      let resp = h.Api.response in
      if str_field resp "schema" <> Some "eventorder.response/1" then
        QCheck.Test.fail_reportf "wrong response schema";
      if obj_field resp "id" <> Some (Jsonout.Int 7) then
        QCheck.Test.fail_reportf "request id not echoed";
      if str_field resp "status" <> Some "ok" then
        QCheck.Test.fail_reportf "unlimited request not ok";
      if str_field resp "engine" <> Some (Engine.to_string Engine.Packed) then
        QCheck.Test.fail_reportf "request engine not honoured";
      let expected =
        with_engine Engine.Packed @@ fun () ->
        let session = Session.of_execution ~jobs:2 ~cache:Session.no_cache x in
        Jsonout.List
          (List.map (Api.result_json x) (Api.answers session trace x queries))
      in
      (match obj_field resp "results" with
      | Some got when got = expected -> ()
      | Some _ ->
          QCheck.Test.fail_reportf "wire results differ from Api.answers"
      | None -> QCheck.Test.fail_reportf "response carries no results");
      true)

(* The per-request engine must resolve from the request, then the server
   config, then the environment default — never from whatever engine the
   previous request happened to leave in the domain. *)
let test_engine_resolution () =
  let prog = Parse.program "proc a { x := 1 }\nproc b { y := x }" in
  match Gen_progs.completed_trace prog with
  | None -> Alcotest.fail "example program did not complete"
  | Some trace ->
      let check expect line_engine cfg_engine =
        with_engine Engine.Sat @@ fun () ->
        let cfg = { test_config with Api.engine = cfg_engine } in
        let h =
          Api.handle_line cfg
            (request_line ?engine:line_engine ~trace [ "schedules" ])
        in
        Alcotest.(check (option string))
          "resolved engine"
          (Some (Engine.to_string expect))
          (str_field h.Api.response "engine")
      in
      check Engine.Naive (Some Engine.Naive) (Some Engine.Packed);
      check Engine.Naive None (Some Engine.Naive);
      (* Neither side names one: the environment default wins, not the
         Sat engine the previous request left behind. *)
      check (Engine.default_of_env ()) None None

(* ------------------------------------------------------------------ *)
(* Error codes and control ops                                         *)
(* ------------------------------------------------------------------ *)

let expect_error ?allow_shutdown code line =
  let h = Api.handle_line ?allow_shutdown test_config line in
  Alcotest.(check (option string))
    ("schema of " ^ line) (Some "eventorder.error/1")
    (str_field h.Api.response "schema");
  Alcotest.(check (option string))
    ("code of " ^ line)
    (Some (Api.code_string code))
    (str_field h.Api.response "code");
  Alcotest.(check bool) "no shutdown on error" false h.Api.shutdown

let test_error_codes () =
  expect_error Api.Parse "{nope";
  expect_error Api.Parse "";
  (* Structurally valid JSON, invalid requests. *)
  expect_error Api.Usage {|{"op":"batch"}|} (* missing schema *);
  expect_error Api.Usage {|{"schema":"eventorder.request/2","op":"ping"}|};
  expect_error Api.Usage
    {|{"schema":"eventorder.request/1","op":"frobnicate"}|};
  expect_error Api.Usage
    {|{"schema":"eventorder.request/1","program":"proc p { x := 1 }"}|}
    (* no queries *);
  expect_error Api.Usage
    {|{"schema":"eventorder.request/1","queries":["relations"]}|}
    (* neither program nor trace *);
  expect_error Api.Usage
    {|{"schema":"eventorder.request/1","program":"proc p { x := 1 }","trace":"x","queries":["relations"]}|};
  expect_error Api.Parse
    {|{"schema":"eventorder.request/1","program":"proc p { ?? }","queries":["relations"]}|};
  expect_error Api.Usage
    {|{"schema":"eventorder.request/1","program":"proc p { x := 1 }","queries":["nonsense"]}|};
  expect_error Api.Usage
    {|{"schema":"eventorder.request/1","program":"proc p { x := 1 }","queries":["relations"],"timeout_ms":0}|};
  (* Shutdown is refused unless the transport opts in. *)
  expect_error Api.Usage {|{"schema":"eventorder.request/1","op":"shutdown"}|};
  (* The id is echoed even when the request fails validation. *)
  let h =
    Api.handle_line test_config
      {|{"schema":"eventorder.request/1","id":"req-9","op":"frobnicate"}|}
  in
  Alcotest.(check (option string))
    "id echoed on error" (Some "req-9")
    (str_field h.Api.response "id")

let test_control_ops () =
  let ping =
    Api.handle_line test_config
      {|{"schema":"eventorder.request/1","op":"ping"}|}
  in
  Alcotest.(check (option string))
    "ping ok" (Some "ok")
    (str_field ping.Api.response "status");
  Alcotest.(check (option string))
    "ping op" (Some "ping")
    (str_field ping.Api.response "op");
  let stats =
    Api.handle_line
      ~extra_stats:(fun () -> [ ("requests_served", Jsonout.Int 3) ])
      test_config
      {|{"schema":"eventorder.request/1","op":"stats"}|}
  in
  Alcotest.(check (option string))
    "stats schema" (Some "eventorder.stats/1")
    (str_field stats.Api.response "schema");
  Alcotest.(check bool)
    "extra stats merged" true
    (obj_field stats.Api.response "requests_served" = Some (Jsonout.Int 3));
  let stop =
    Api.handle_line ~allow_shutdown:true test_config
      {|{"schema":"eventorder.request/1","op":"shutdown"}|}
  in
  Alcotest.(check bool) "shutdown flagged" true stop.Api.shutdown;
  Alcotest.(check (option string))
    "shutdown op" (Some "shutdown")
    (str_field stop.Api.response "op")

let test_op_classification () =
  let classify line = Api.request_op_of_line line in
  Alcotest.(check bool)
    "batch routes to the queue" true
    (classify {|{"schema":"eventorder.request/1","op":"batch"}|}
    = Some Api.Batch);
  Alcotest.(check bool)
    "missing op defaults to batch" true
    (classify {|{"schema":"eventorder.request/1"}|} = Some Api.Batch);
  Alcotest.(check bool)
    "stats stays inline" true
    (classify {|{"schema":"eventorder.request/1","op":"stats"}|}
    = Some Api.Stats);
  Alcotest.(check bool)
    "garbage is unclassifiable" true
    (classify "{nope" = None);
  Alcotest.(check bool)
    "id recovery survives bad requests" true
    (Api.request_id_of_line {|{"id":41,"op":"frobnicate"}|}
    = Some (Jsonout.Int 41))

let suite =
  [
    qcheck test_jsonin_roundtrip;
    Alcotest.test_case "jsonin edge cases" `Quick test_jsonin_edges;
    qcheck test_answers_match_legacy;
    qcheck test_pair_queries_match_decide;
    qcheck test_handle_line_matches_answers;
    Alcotest.test_case "engine resolution order" `Quick test_engine_resolution;
    Alcotest.test_case "error codes" `Quick test_error_codes;
    Alcotest.test_case "control ops" `Quick test_control_ops;
    Alcotest.test_case "op classification" `Quick test_op_classification;
  ]
