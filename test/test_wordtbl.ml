let qcheck = QCheck_alcotest.to_alcotest

let test_basics () =
  let t = Wordtbl.create 4 in
  Alcotest.(check int) "empty length" 0 (Wordtbl.length t);
  Wordtbl.add t [| 1; 2; 3 |] "a";
  Wordtbl.add t [| 1; 2; 4 |] "b";
  Alcotest.(check int) "length" 2 (Wordtbl.length t);
  Alcotest.(check (option string)) "find first" (Some "a")
    (Wordtbl.find_opt t [| 1; 2; 3 |]);
  Alcotest.(check (option string)) "find second" (Some "b")
    (Wordtbl.find_opt t [| 1; 2; 4 |]);
  Alcotest.(check (option string)) "absent" None
    (Wordtbl.find_opt t [| 1; 2; 5 |]);
  Alcotest.(check bool) "mem" true (Wordtbl.mem t [| 1; 2; 3 |]);
  (* add replaces: the table holds one binding per key *)
  Wordtbl.add t [| 1; 2; 3 |] "a2";
  Alcotest.(check int) "length after replace" 2 (Wordtbl.length t);
  Alcotest.(check (option string)) "replaced" (Some "a2")
    (Wordtbl.find_opt t [| 1; 2; 3 |])

let test_key_lengths_distinguish () =
  let t = Wordtbl.create 4 in
  Wordtbl.add t [||] 0;
  Wordtbl.add t [| 0 |] 1;
  Wordtbl.add t [| 0; 0 |] 2;
  Alcotest.(check (option int)) "empty key" (Some 0) (Wordtbl.find_opt t [||]);
  Alcotest.(check (option int)) "one zero" (Some 1)
    (Wordtbl.find_opt t [| 0 |]);
  Alcotest.(check (option int)) "two zeros" (Some 2)
    (Wordtbl.find_opt t [| 0; 0 |])

let test_growth () =
  (* Push far past the initial capacity to exercise resizing. *)
  let t = Wordtbl.create 2 in
  for i = 0 to 999 do
    Wordtbl.add t [| i; i * 7; i lxor 0x55 |] (i * 3)
  done;
  Alcotest.(check int) "length" 1000 (Wordtbl.length t);
  for i = 0 to 999 do
    match Wordtbl.find_opt t [| i; i * 7; i lxor 0x55 |] with
    | Some v when v = i * 3 -> ()
    | _ -> Alcotest.failf "lost binding %d after growth" i
  done

let test_scratch_not_retained () =
  let t = Wordtbl.create 4 in
  let scratch = [| 9; 9 |] in
  Alcotest.(check bool) "probe miss" false (Wordtbl.mem t scratch);
  Wordtbl.add t (Array.copy scratch) true;
  (* mutating the probe buffer must not disturb the stored binding *)
  scratch.(0) <- 0;
  Alcotest.(check bool) "old key still bound" true (Wordtbl.mem t [| 9; 9 |]);
  Alcotest.(check bool) "new value unbound" false (Wordtbl.mem t [| 0; 9 |])

(* Model-based testing: a script of add/find operations run against both
   Wordtbl and the stdlib Hashtbl (with list keys) must agree. *)
let key_gen = QCheck.Gen.(list_size (int_range 0 4) (int_range 0 15))

let script_gen =
  QCheck.Gen.(
    list_size (int_range 0 200) (pair bool (pair key_gen small_nat)))

let script_print script =
  String.concat "; "
    (List.map
       (fun (is_add, (key, v)) ->
         Printf.sprintf "%s [%s] %d"
           (if is_add then "add" else "find")
           (String.concat "," (List.map string_of_int key))
           v)
       script)

let prop_matches_hashtbl =
  QCheck.Test.make ~name:"agrees with a Hashtbl model" ~count:300
    (QCheck.make ~print:script_print script_gen) (fun script ->
      let t = Wordtbl.create 1 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (is_add, (key, v)) ->
          if is_add then begin
            Wordtbl.add t (Array.of_list key) v;
            Hashtbl.replace model key v;
            true
          end
          else Wordtbl.find_opt t (Array.of_list key) = Hashtbl.find_opt model key)
        script
      && Wordtbl.length t = Hashtbl.length model)

let prop_fold_covers_all =
  QCheck.Test.make ~name:"iter/fold visit every binding once" ~count:100
    (QCheck.make
       ~print:(fun keys ->
         String.concat "; "
           (List.map
              (fun k -> String.concat "," (List.map string_of_int k))
              keys))
       QCheck.Gen.(list_size (int_range 0 80) key_gen))
    (fun keys ->
      let t = Wordtbl.create 1 in
      List.iter (fun k -> Wordtbl.add t (Array.of_list k) ()) keys;
      let distinct = List.sort_uniq compare keys in
      let folded =
        Wordtbl.fold (fun k () acc -> Array.to_list k :: acc) t []
      in
      let iterated = ref [] in
      Wordtbl.iter (fun k () -> iterated := Array.to_list k :: !iterated) t;
      List.sort compare folded = distinct
      && List.sort compare !iterated = distinct)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "key lengths distinguish" `Quick
      test_key_lengths_distinguish;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "scratch buffers not retained" `Quick
      test_scratch_not_retained;
    qcheck prop_matches_hashtbl;
    qcheck prop_fold_covers_all;
  ]
