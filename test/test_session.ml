(* Differential property tests for the shared-session layer: whatever
   combination of engine, worker count and cache temperature serves a
   query, the answers must be bit-identical to the legacy one-shot
   paths.  This is the contract that lets every consumer (relations,
   decisions, races, the CLI batch mode) ride one session safely. *)

let qcheck = QCheck_alcotest.to_alcotest

let small_execution prog =
  match Gen_progs.completed_trace prog with
  | Some t when Trace.n_events t <= 9 -> Some (Trace.to_execution t)
  | _ -> None

let rel_pairs s rel = List.sort compare (Rel.to_pairs (Relations.to_rel s rel))

let same_summary name (a : Relations.t) (b : Relations.t) =
  if a.Relations.feasible_count <> b.Relations.feasible_count then
    QCheck.Test.fail_reportf "%s: feasible_count %d vs %d" name
      a.Relations.feasible_count b.Relations.feasible_count;
  if a.Relations.distinct_classes <> b.Relations.distinct_classes then
    QCheck.Test.fail_reportf "%s: distinct_classes %d vs %d" name
      a.Relations.distinct_classes b.Relations.distinct_classes;
  List.iter
    (fun rel ->
      if rel_pairs a rel <> rel_pairs b rel then
        QCheck.Test.fail_reportf "%s: %s matrix differs" name
          (Relations.relation_name rel))
    Relations.all_relations

let race_key (r : Race.race) = (r.Race.e1, r.Race.e2, r.Race.variables)

let same_races name a b =
  let a = List.sort compare (List.map race_key a) in
  let b = List.sort compare (List.map race_key b) in
  if a <> b then QCheck.Test.fail_reportf "%s: race sets differ" name

let with_engine engine f =
  let saved = Engine.current () in
  Engine.set engine;
  Fun.protect ~finally:(fun () -> Engine.set saved) f

(* 1. One session with every consumer attached answers exactly like the
   legacy per-call paths, across both engines and worker counts. *)
let test_session_matches_legacy =
  QCheck.Test.make ~name:"session folds = legacy per-call results" ~count:30
    Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      let x = Option.get (small_execution prog) in
      let sk = Skeleton.of_execution x in
      let ref_full = Relations.compute sk in
      let ref_reduced = Relations.compute_reduced sk in
      let ref_races = Race.feasible_races x in
      let ref_first = Race.first_races x in
      List.iter
        (fun engine ->
          with_engine engine @@ fun () ->
          List.iter
            (fun jobs ->
              let name =
                Printf.sprintf "%s/jobs=%d" (Engine.to_string engine) jobs
              in
              let session =
                Session.create ~jobs ~cache:Session.no_cache sk
              in
              same_summary (name ^ " full") ref_full
                (Relations.of_session session);
              same_summary (name ^ " reduced") ref_reduced
                (Relations.of_session_reduced session);
              same_races (name ^ " races") ref_races
                (Race.feasible_races_session session);
              same_races (name ^ " first") ref_first
                (Race.first_races_session session);
              if
                Session.schedule_count session
                <> ref_full.Relations.feasible_count
              then
                QCheck.Test.fail_reportf "%s: schedule_count %d vs %d" name
                  (Session.schedule_count session)
                  ref_full.Relations.feasible_count)
            [ 1; 4 ])
        [ Engine.Naive; Engine.Packed ];
      true)

(* 2. Per-pair decisions riding a session (shared reach engine, shared
   class summary) answer exactly like a private legacy [Decide.create]
   for every relation and every pair. *)
let test_decide_on_session =
  QCheck.Test.make ~name:"Decide.of_session = legacy Decide.create"
    ~count:25 Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      let x = Option.get (small_execution prog) in
      let session = Session.of_execution ~cache:Session.no_cache x in
      let d_session = Decide.of_session session in
      let d_legacy = Decide.create x in
      let n = Execution.n_events x in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b then
            List.iter
              (fun rel ->
                if
                  Decide.holds d_session rel a b
                  <> Decide.holds d_legacy rel a b
                then
                  QCheck.Test.fail_reportf "%s disagrees on (%d, %d)"
                    (Relations.relation_name rel) a b)
              Relations.all_relations
        done
      done;
      true)

let counter session_tel key = Counters.get (Telemetry.counters session_tel) key

(* Warm-cache round trip: answers identical, zero enumeration. *)
let warm_roundtrip name cache x =
  let sk = Skeleton.of_execution x in
  (* Cold: compute and store. *)
  let cold = Session.create ~cache sk in
  let cold_full = Relations.of_session cold in
  let cold_races = Race.feasible_races_session cold in
  (* Warm: a fresh session over the same program must be served entirely
     from the cache — same answers, no enumeration at all. *)
  let tel = Telemetry.create () in
  let warm = Session.create ~stats:tel ~cache sk in
  same_summary (name ^ " warm summary") cold_full (Relations.of_session warm);
  same_races (name ^ " warm races") cold_races
    (Race.feasible_races_session warm);
  if counter tel Counters.Enum_nodes <> 0 then
    QCheck.Test.fail_reportf "%s: warm session enumerated (%d nodes)" name
      (counter tel Counters.Enum_nodes);
  if counter tel Counters.Cache_misses <> 0 then
    QCheck.Test.fail_reportf "%s: warm session missed the cache" name

let test_memory_cache =
  QCheck.Test.make ~name:"warm memory cache: same answers, zero enum_nodes"
    ~count:20 Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      let x = Option.get (small_execution prog) in
      Session.clear_memory_cache ();
      warm_roundtrip "memory" { Session.memory = true; dir = None } x;
      Session.clear_memory_cache ();
      true)

let temp_cache_dir () =
  let path = Filename.temp_file "eo_session_test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_disk_cache =
  QCheck.Test.make ~name:"warm disk cache: same answers, zero enum_nodes"
    ~count:10 Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      let x = Option.get (small_execution prog) in
      let dir = temp_cache_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          (* memory off: every warm hit must come from disk. *)
          warm_roundtrip "disk" { Session.memory = false; dir = Some dir } x);
      true)

(* 3. The canonical program key ignores event numbering: reversing all
   event ids yields the same hash, and a cache warmed under one
   numbering serves the other (the payload is stored in canonical
   coordinates). *)
let permute_execution (x : Execution.t) perm =
  let n = Array.length x.Execution.events in
  let events =
    Array.init n (fun _ -> x.Execution.events.(0) (* placeholder *))
  in
  Array.iteri
    (fun old e -> events.(perm.(old)) <- { e with Event.id = perm.(old) })
    x.Execution.events;
  let remap rel =
    let r = Rel.create n in
    List.iter (fun (a, b) -> Rel.add r perm.(a) perm.(b)) (Rel.to_pairs rel);
    r
  in
  {
    x with
    Execution.events;
    program_order = remap x.Execution.program_order;
    temporal = remap x.Execution.temporal;
    dependences = remap x.Execution.dependences;
  }

let test_key_renumbering =
  QCheck.Test.make
    ~name:"Program_key stable under renumbering; cache carries over"
    ~count:20 Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      let x = Option.get (small_execution prog) in
      let n = Execution.n_events x in
      QCheck.assume (n > 1);
      let perm = Array.init n (fun i -> n - 1 - i) in
      let y = permute_execution x perm in
      let kx = Program_key.of_execution x in
      let ky = Program_key.of_execution y in
      if not (Program_key.equal kx ky) then
        QCheck.Test.fail_reportf "hashes differ under renumbering:@.%s@.vs@.%s"
          (Program_key.serialize x) (Program_key.serialize y);
      (* Warm the cache under numbering [x], query under numbering [y]:
         the decoded races must be [x]'s races pushed through the
         permutation — and nothing may be recomputed. *)
      Session.clear_memory_cache ();
      let cache = { Session.memory = true; dir = None } in
      let races_x =
        Race.feasible_races_session (Session.of_execution ~cache x)
      in
      let tel = Telemetry.create () in
      let races_y =
        Race.feasible_races_session (Session.of_execution ~stats:tel ~cache y)
      in
      let expected =
        List.map
          (fun (r : Race.race) ->
            let a = perm.(r.Race.e1) and b = perm.(r.Race.e2) in
            { r with Race.e1 = min a b; e2 = max a b })
          races_x
      in
      same_races "renumbered races" expected races_y;
      if counter tel Counters.Cache_memory_hits < 1 then
        QCheck.Test.fail_reportf
          "renumbered query did not hit the warmed cache";
      Session.clear_memory_cache ();
      true)

(* The canonical permutations are mutually inverse — the property the
   payload encode/decode round trip rests on. *)
let test_key_permutations =
  QCheck.Test.make ~name:"Program_key permutations are inverse" ~count:30
    Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      let x = Option.get (small_execution prog) in
      let k = Program_key.of_execution x in
      let tc = k.Program_key.to_canonical
      and oc = k.Program_key.of_canonical in
      Array.iteri
        (fun i c ->
          if oc.(c) <> i then
            QCheck.Test.fail_reportf "to/of_canonical not inverse at %d" i)
        tc;
      String.length (Program_key.hash k) = 32)

(* ---- cache hardening ---- *)

(* A small racy fixture: two schedules orders, a write/write race on x,
   enough events that every enumeration pass spends several nodes. *)
let fixture_src = "proc a { x := 1; y := 1 }\nproc b { x := 2; z := 1 }"

let fixture_execution () =
  match Gen_progs.completed_trace (Parse.program fixture_src) with
  | Some t -> Trace.to_execution t
  | None -> Alcotest.fail "fixture program deadlocked"

(* 4. Two processes (here: domains) racing to warm the same disk cache
   directory must not corrupt it: each write lands in a unique tmp file
   and is renamed atomically, so whatever interleaving wins, a third
   session finds a valid entry and recomputes nothing. *)
let test_cache_two_writers () =
  let x = fixture_execution () in
  let reference = Race.feasible_races x in
  let dir = temp_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cache = { Session.memory = false; dir = Some dir } in
      let writer () =
        Domain.spawn (fun () ->
            let x = fixture_execution () in
            let session = Session.of_execution ~cache x in
            ignore (Relations.of_session session);
            Race.feasible_races_session session)
      in
      let d1 = writer () and d2 = writer () in
      let r1 = Domain.join d1 and r2 = Domain.join d2 in
      same_races "writer 1" reference r1;
      same_races "writer 2" reference r2;
      (* The surviving cache files must be complete and valid: a warm
         session decodes them without recomputing. *)
      let tel = Telemetry.create () in
      let warm = Session.of_execution ~stats:tel ~cache x in
      same_races "after the race" reference (Race.feasible_races_session warm);
      Alcotest.(check int) "no enumeration on warm read" 0
        (counter tel Counters.Enum_nodes))

(* 5. A corrupted cache payload must never crash or poison an answer:
   the decoder rejects it and the session recomputes from scratch. *)
let test_corrupted_cache_fallback () =
  let x = fixture_execution () in
  let reference = Race.feasible_races x in
  let dir = temp_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cache = { Session.memory = false; dir = Some dir } in
      same_races "cold" reference
        (Race.feasible_races_session (Session.of_execution ~cache x));
      let races_file =
        match
          Array.find_opt
            (fun f -> String.length f > 0 && Filename.check_suffix f ".eocache"
                      && String.split_on_char '.' f |> List.mem "races")
            (Sys.readdir dir)
        with
        | Some f -> Filename.concat dir f
        | None -> Alcotest.fail "no races cache entry written"
      in
      (* Keep the two header lines (version, entry key) and replace the
         payload with garbage: the version/key checks pass, so only the
         payload decoder stands between the garbage and the answer. *)
      let ic = open_in_bin races_file in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let after_headers =
        let i = String.index content '\n' in
        String.index_from content (i + 1) '\n' + 1
      in
      let oc = open_out_bin races_file in
      output_string oc (String.sub content 0 after_headers);
      output_string oc "3 0 1 not-a-variable-list \xff\xfe garbage";
      close_out oc;
      let tel = Telemetry.create () in
      let recovered =
        Race.feasible_races_session (Session.of_execution ~stats:tel ~cache x)
      in
      same_races "recomputed past the corruption" reference recovered;
      (* The blob layer can't tell the payload is garbage (that's the
         race decoder's job), so the real proof of recovery is the
         recomputation itself: the reachability engine must have run. *)
      Alcotest.(check bool) "fell back to a fresh computation" true
        (counter tel Counters.Reach_queries > 0))

(* 6. Budget-truncated results must never be cached: a later unbudgeted
   session over the same program would otherwise be served the partial
   answer as if it were exact. *)
let test_budget_results_not_cached () =
  let x = fixture_execution () in
  let sk = Skeleton.of_execution x in
  let reference = Relations.compute sk in
  Session.clear_memory_cache ();
  let cache = { Session.memory = true; dir = None } in
  let budget = Budget.create ~node_budget:1 () in
  let truncated =
    match
      Relations.of_session_outcome (Session.create ~budget ~cache sk)
    with
    | Budget.Bound_hit s -> s
    | Budget.Exact _ -> Alcotest.fail "one-node budget did not truncate"
  in
  Alcotest.(check bool) "partial pass undercounts" true
    (truncated.Relations.feasible_count < reference.Relations.feasible_count);
  let fresh = Relations.of_session (Session.create ~cache sk) in
  same_summary "unbudgeted session after a truncated one" reference fresh;
  Session.clear_memory_cache ()

let suite =
  [
    qcheck test_session_matches_legacy;
    qcheck test_decide_on_session;
    qcheck test_memory_cache;
    qcheck test_disk_cache;
    qcheck test_key_renumbering;
    qcheck test_key_permutations;
    Alcotest.test_case "two writers, one cache dir" `Quick
      test_cache_two_writers;
    Alcotest.test_case "corrupted cache entry falls back" `Quick
      test_corrupted_cache_fallback;
    Alcotest.test_case "budget-truncated results are not cached" `Quick
      test_budget_results_not_cached;
  ]
