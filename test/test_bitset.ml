let qcheck = QCheck_alcotest.to_alcotest

let small_set =
  (* Generates (capacity, element list) with elements in range. *)
  QCheck.make
    ~print:(fun (n, xs) ->
      Printf.sprintf "n=%d [%s]" n (String.concat ";" (List.map string_of_int xs)))
    QCheck.Gen.(
      int_range 1 200 >>= fun n ->
      list_size (int_range 0 50) (int_range 0 (n - 1)) >>= fun xs ->
      return (n, xs))

let test_empty () =
  let s = Bitset.create 10 in
  Alcotest.(check int) "cardinal" 0 (Bitset.cardinal s);
  Alcotest.(check bool) "is_empty" true (Bitset.is_empty s);
  Alcotest.(check bool) "mem" false (Bitset.mem s 3)

let test_add_remove () =
  let s = Bitset.create 100 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 0; 63; 64; 99 ] (Bitset.to_list s);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal s)

let test_bounds () =
  let s = Bitset.create 5 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.add s 5)

let test_fill () =
  let s = Bitset.create 70 in
  Bitset.fill s;
  Alcotest.(check int) "cardinal" 70 (Bitset.cardinal s);
  Alcotest.(check bool) "mem last" true (Bitset.mem s 69);
  Bitset.clear s;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty s)

let test_zero_capacity () =
  let s = Bitset.create 0 in
  Alcotest.(check int) "cardinal" 0 (Bitset.cardinal s);
  Bitset.fill s;
  Alcotest.(check int) "fill of empty" 0 (Bitset.cardinal s)

let test_set_algebra () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ]
    (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.to_list (Bitset.diff a b));
  Alcotest.(check bool) "subset yes" true
    (Bitset.subset (Bitset.of_list 10 [ 1; 3 ]) a);
  Alcotest.(check bool) "subset no" false (Bitset.subset b a);
  Alcotest.(check bool) "disjoint no" false (Bitset.disjoint a b);
  Alcotest.(check bool) "disjoint yes" true
    (Bitset.disjoint a (Bitset.of_list 10 [ 5; 6 ]))

let test_capacity_mismatch () =
  let a = Bitset.create 5 and b = Bitset.create 6 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> Bitset.union_into a b)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_list/to_list sorts and dedups" ~count:200 small_set
    (fun (n, xs) ->
      Bitset.to_list (Bitset.of_list n xs) = List.sort_uniq compare xs)

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal = length of dedup" ~count:200 small_set
    (fun (n, xs) ->
      Bitset.cardinal (Bitset.of_list n xs)
      = List.length (List.sort_uniq compare xs))

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutes" ~count:200
    (QCheck.pair small_set small_set)
    (fun ((n1, xs), (n2, ys)) ->
      let n = max n1 n2 in
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      Bitset.equal (Bitset.union a b) (Bitset.union b a))

let prop_demorgan =
  QCheck.Test.make ~name:"diff via inter of complement" ~count:200
    (QCheck.pair small_set small_set)
    (fun ((n1, xs), (n2, ys)) ->
      let n = max n1 n2 in
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      let complement_b = Bitset.create n in
      Bitset.fill complement_b;
      Bitset.diff_into complement_b b;
      Bitset.equal (Bitset.diff a b) (Bitset.inter a complement_b))

let prop_fold_iter_agree =
  QCheck.Test.make ~name:"fold agrees with iter" ~count:200 small_set
    (fun (n, xs) ->
      let s = Bitset.of_list n xs in
      let via_iter = ref [] in
      Bitset.iter (fun i -> via_iter := i :: !via_iter) s;
      Bitset.fold (fun i acc -> i :: acc) s [] = !via_iter)

let test_min_elt_from () =
  let s = Bitset.of_list 200 [ 0; 5; 63; 64; 127; 199 ] in
  Alcotest.(check int) "from 0" 0 (Bitset.min_elt_from s 0);
  Alcotest.(check int) "from 1" 5 (Bitset.min_elt_from s 1);
  Alcotest.(check int) "word boundary" 63 (Bitset.min_elt_from s 6);
  Alcotest.(check int) "next word" 64 (Bitset.min_elt_from s 64);
  Alcotest.(check int) "skip empty words" 199 (Bitset.min_elt_from s 128);
  Alcotest.(check int) "past last" (-1) (Bitset.min_elt_from s 200);
  Alcotest.(check int) "negative clamps to 0" 0 (Bitset.min_elt_from s (-3));
  Alcotest.(check int) "empty set" (-1)
    (Bitset.min_elt_from (Bitset.create 70) 0)

let test_copy_into () =
  let src = Bitset.of_list 80 [ 2; 63; 79 ] in
  let dst = Bitset.of_list 80 [ 0; 1; 2; 3 ] in
  Bitset.copy_into ~dst src;
  Alcotest.(check bool) "equal after copy" true (Bitset.equal dst src);
  Bitset.add dst 10;
  Alcotest.(check bool) "copies are independent" false (Bitset.mem src 10);
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Bitset: capacity mismatch") (fun () ->
      Bitset.copy_into ~dst:(Bitset.create 81) src)

let popcount_words s =
  let count = ref 0 in
  for w = 0 to Bitset.num_words s - 1 do
    let x = ref (Bitset.get_word s w) in
    while !x <> 0 do
      count := !count + (!x land 1);
      x := !x lsr 1
    done
  done;
  !count

let prop_min_elt_from_walk =
  QCheck.Test.make
    ~name:"walking min_elt_from visits to_list in order" ~count:200 small_set
    (fun (n, xs) ->
      let s = Bitset.of_list n xs in
      let acc = ref [] in
      let e = ref (Bitset.min_elt_from s 0) in
      while !e >= 0 do
        acc := !e :: !acc;
        e := Bitset.min_elt_from s (!e + 1)
      done;
      List.rev !acc = Bitset.to_list s)

let prop_words_popcount =
  QCheck.Test.make ~name:"raw words hold cardinal bits" ~count:200 small_set
    (fun (n, xs) ->
      let s = Bitset.of_list n xs in
      popcount_words s = Bitset.cardinal s)

let prop_copy_into_roundtrip =
  QCheck.Test.make ~name:"copy_into reproduces the source" ~count:200 small_set
    (fun (n, xs) ->
      let src = Bitset.of_list n xs in
      let dst = Bitset.create n in
      Bitset.fill dst;
      Bitset.copy_into ~dst src;
      Bitset.equal dst src)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "fill/clear" `Quick test_fill;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
    Alcotest.test_case "set algebra" `Quick test_set_algebra;
    Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
    Alcotest.test_case "min_elt_from" `Quick test_min_elt_from;
    Alcotest.test_case "copy_into" `Quick test_copy_into;
    qcheck prop_roundtrip;
    qcheck prop_cardinal;
    qcheck prop_union_commutes;
    qcheck prop_demorgan;
    qcheck prop_fold_iter_agree;
    qcheck prop_min_elt_from_walk;
    qcheck prop_words_popcount;
    qcheck prop_copy_into_roundtrip;
  ]
