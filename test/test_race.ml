let qcheck = QCheck_alcotest.to_alcotest

let execution_of src =
  match Gen_progs.completed_trace (Parse.program src) with
  | Some t -> Trace.to_execution t
  | None -> Alcotest.fail "fixture program deadlocked"

let test_unsynchronized_race () =
  let x = execution_of "proc a { x := 1 }\nproc b { x := 2 }" in
  (match Race.conflicting_pairs x with
  | [ r ] -> Alcotest.(check (list int)) "on x" [ 0 ] r.Race.variables
  | _ -> Alcotest.fail "expected one candidate");
  Alcotest.(check int) "apparent" 1 (List.length (Race.apparent_races x));
  Alcotest.(check int) "feasible" 1 (List.length (Race.feasible_races x))

let test_synchronized_no_race () =
  let x =
    execution_of "sem s = 0\nproc a { x := 1; v(s) }\nproc b { p(s); x := 2 }"
  in
  Alcotest.(check int) "one candidate" 1 (List.length (Race.conflicting_pairs x));
  Alcotest.(check int) "no apparent race" 0 (List.length (Race.apparent_races x));
  Alcotest.(check int) "no feasible race" 0 (List.length (Race.feasible_races x))

let test_read_read_not_conflicting () =
  let x = execution_of "var x = 1\nproc a { y := x }\nproc b { z := x }" in
  Alcotest.(check int) "reads do not conflict" 0
    (List.length (Race.conflicting_pairs x))

let test_same_process_not_conflicting () =
  let x = execution_of "proc a { x := 1; x := 2 }" in
  Alcotest.(check int) "program order is not a race" 0
    (List.length (Race.conflicting_pairs x))

(* The ordering the observed pairing suggests can evaporate in another
   feasible execution: an apparent-race detector based on the observed
   vector clocks misses this one. *)
let test_feasible_race_hidden_from_vclock () =
  let src =
    "sem s = 0\n\
     proc writer { x := 1; v(s) }\n\
     proc helper { v(s) }\n\
     proc reader { p(s); x := 2 }"
  in
  let x =
    (* Observed order: writer runs first, so its V pairs with the P. *)
    match
      Gen_progs.completed_trace
        ~policy:(Sched.Replay [ 0; 0; 2; 2; 1 ])
        (Parse.program src)
    with
    | Some t -> Trace.to_execution t
    | None -> Alcotest.fail "fixture program deadlocked"
  in
  (* Observed run: writer's V pairs with the P, so vclock orders
     x:=1 -> x:=2 and sees no race. *)
  Alcotest.(check int) "no apparent race" 0 (List.length (Race.apparent_races x));
  (* But helper's V could have served the P instead. *)
  Alcotest.(check int) "one feasible race" 1
    (List.length (Race.feasible_races x))

let test_is_feasible_race_single_pair () =
  let x = execution_of "proc a { x := 1 }\nproc b { x := 2 }" in
  Alcotest.(check bool) "pair is racy" true (Race.is_feasible_race x 0 1);
  Alcotest.(check bool) "symmetric" true (Race.is_feasible_race x 1 0)

let test_pp_race () =
  let x = execution_of "proc a { x := 1 }\nproc b { x := 2 }" in
  match Race.apparent_races x with
  | [ r ] ->
      let s = Format.asprintf "%a" (Race.pp_race x) r in
      Alcotest.(check bool) "mentions both labels" true
        (String.length s > 0)
  | _ -> Alcotest.fail "expected one race"

let prop_feasible_races_are_candidates =
  QCheck.Test.make ~name:"feasible races ⊆ conflicting candidates" ~count:80
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 7 then true
          else
            let x = Trace.to_execution tr in
            let candidates = Race.conflicting_pairs x in
            List.for_all
              (fun r ->
                List.exists
                  (fun c -> c.Race.e1 = r.Race.e1 && c.Race.e2 = r.Race.e2)
                  candidates)
              (Race.feasible_races x))

let prop_apparent_races_are_candidates =
  QCheck.Test.make ~name:"apparent races ⊆ conflicting candidates" ~count:80
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          let x = Trace.to_execution tr in
          let candidates = Race.conflicting_pairs x in
          List.for_all
            (fun r ->
              List.exists
                (fun c -> c.Race.e1 = r.Race.e1 && c.Race.e2 = r.Race.e2)
                candidates)
            (Race.apparent_races x))

let test_first_races () =
  (* Two races in sequence: the writers re-meet after a semaphore
     rendezvous, so the second race is downstream of the first. *)
  let src =
    "sem s = 0\n\
     proc a { x := 1; v(s); p(t) ; x := 3 }\n\
     proc b { x := 2; v(t); p(s) ; x := 4 }"
  in
  let x = execution_of src in
  let feasible = Race.feasible_races x in
  let first = Race.first_races x in
  Alcotest.(check bool) "several feasible races" true (List.length feasible > 1);
  Alcotest.(check bool) "first races are fewer" true
    (List.length first < List.length feasible);
  (* The x:=1 / x:=2 race is first. *)
  Alcotest.(check bool) "initial pair is first" true
    (List.exists (fun r -> r.Race.e1 = 0) first)

let test_first_races_independent () =
  (* Two independent races: both are first. *)
  let x =
    execution_of
      "proc a { x := 1 }\nproc b { x := 2 }\nproc c { y := 1 }\nproc d { y := 2 }"
  in
  Alcotest.(check int) "both first" 2 (List.length (Race.first_races x))

let test_race_witness () =
  let x = execution_of "proc a { x := 1 }\nproc b { x := 2 }" in
  (match Race.race_witness x 0 1 with
  | None -> Alcotest.fail "expected a witness"
  | Some (s1, s2) ->
      Alcotest.(check (array int)) "first order" [| 0; 1 |] s1;
      Alcotest.(check (array int)) "second order" [| 1; 0 |] s2);
  (* Synchronized pair: no witness. *)
  let x =
    execution_of "sem s = 0\nproc a { x := 1; v(s) }\nproc b { p(s); x := 2 }"
  in
  let writer =
    (Array.to_list x.Execution.events
    |> List.find (fun e -> e.Event.label = "x := 1")).Event.id
  in
  let reader =
    (Array.to_list x.Execution.events
    |> List.find (fun e -> e.Event.label = "x := 2")).Event.id
  in
  Alcotest.(check bool) "no witness when synchronized" true
    (Race.race_witness x writer reader = None)

let prop_witness_iff_race =
  QCheck.Test.make ~name:"race_witness = Some iff is_feasible_race" ~count:60
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 7 then true
          else
            let x = Trace.to_execution tr in
            List.for_all
              (fun r ->
                match Race.race_witness x r.Race.e1 r.Race.e2 with
                | Some (s1, s2) ->
                    Race.is_feasible_race x r.Race.e1 r.Race.e2
                    && Array.length s1 = Execution.n_events x
                    && Array.length s2 = Execution.n_events x
                | None -> not (Race.is_feasible_race x r.Race.e1 r.Race.e2))
              (Race.conflicting_pairs x))

let prop_first_subset_feasible =
  QCheck.Test.make ~name:"first races ⊆ feasible races" ~count:60
    Gen_progs.arbitrary_program (fun prog ->
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 7 then true
          else
            let x = Trace.to_execution tr in
            let feasible = Race.feasible_races x in
            List.for_all (fun r -> List.mem r feasible) (Race.first_races x))

let prop_state_engine_matches_enumeration =
  QCheck.Test.make
    ~name:"state-engine race decision = enumerated pinned-incomparability \
           (semaphore programs)"
    ~count:60 Gen_progs.arbitrary_program (fun prog ->
      (* Restrict to semaphore-only programs, where the pinned order is
         exact (see Pinned); Clear corners may legitimately differ. *)
      QCheck.assume (not (Ast.uses_event_sync prog));
      match Gen_progs.completed_trace prog with
      | None -> true
      | Some tr ->
          if Trace.n_events tr > 7 then true
          else
            let x = Trace.to_execution tr in
            List.for_all
              (fun r ->
                Race.is_feasible_race x r.Race.e1 r.Race.e2
                (* ~limit selects the enumeration reference path; the cap
                   is far above any 7-event schedule count *)
                = Race.is_feasible_race ~limit:10_000_000 x r.Race.e1
                    r.Race.e2)
              (Race.conflicting_pairs x))

let suite =
  [
    Alcotest.test_case "unsynchronized race" `Quick test_unsynchronized_race;
    Alcotest.test_case "synchronized: no race" `Quick test_synchronized_no_race;
    Alcotest.test_case "read-read not conflicting" `Quick
      test_read_read_not_conflicting;
    Alcotest.test_case "same process not conflicting" `Quick
      test_same_process_not_conflicting;
    Alcotest.test_case "feasible race hidden from vector clocks" `Quick
      test_feasible_race_hidden_from_vclock;
    Alcotest.test_case "single-pair decision" `Quick
      test_is_feasible_race_single_pair;
    Alcotest.test_case "race printing" `Quick test_pp_race;
    Alcotest.test_case "race witnesses" `Quick test_race_witness;
    qcheck prop_witness_iff_race;
    Alcotest.test_case "first races" `Quick test_first_races;
    Alcotest.test_case "independent races are both first" `Quick
      test_first_races_independent;
    qcheck prop_first_subset_feasible;
    qcheck prop_feasible_races_are_candidates;
    qcheck prop_apparent_races_are_candidates;
    qcheck prop_state_engine_matches_enumeration;
  ]
