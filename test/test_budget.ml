(* Budget semantics and graceful degradation.

   Unit tests pin the polling contract (caps trip exactly at their
   limit, the first tripper wins, expiry is sticky); the property test
   checks the degradation contract end to end: whatever engine, worker
   count and budget size serve a query, an [Exact] outcome must equal
   the unbudgeted reference and a [Bound_hit] outcome must err only in
   the sound direction — could-have relations under-reported, must-have
   relations over-reported, counts undercounted. *)

let qcheck = QCheck_alcotest.to_alcotest

let test_create_validation () =
  let rejects what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  rejects "timeout_ms 0" (fun () -> Budget.create ~timeout_ms:0 ());
  rejects "node_budget 0" (fun () -> Budget.create ~node_budget:0 ());
  rejects "conflict_budget -1" (fun () ->
      Budget.create ~conflict_budget:(-1) ());
  Alcotest.(check bool) "positive caps accepted" false
    (Budget.exhausted (Budget.create ~timeout_ms:60_000 ~node_budget:1 ()))

let test_unlimited () =
  let b = Budget.unlimited in
  Alcotest.(check bool) "is_unlimited" true (Budget.is_unlimited b);
  for _ = 1 to 1000 do
    if Budget.poll_node b || Budget.poll_conflict b then
      Alcotest.fail "unlimited budget tripped"
  done;
  Budget.cancel b;
  Alcotest.(check bool) "cancel is a no-op" false (Budget.exhausted b);
  Alcotest.(check bool) "check_now false" false (Budget.check_now b);
  Budget.raise_if_exhausted b

let test_node_budget_trips_at_limit () =
  let b = Budget.create ~node_budget:5 () in
  for i = 1 to 5 do
    if Budget.poll_node b then Alcotest.failf "tripped early at node %d" i
  done;
  Alcotest.(check bool) "node 6 trips" true (Budget.poll_node b);
  Alcotest.(check string) "reason" "node_budget"
    (match Budget.reason b with
    | Some r -> Budget.reason_name r
    | None -> "none");
  (* Expiry is sticky: every later poll reports it immediately, and the
     first tripper keeps the blame even if another cap is cancelled on
     top. *)
  Alcotest.(check bool) "sticky" true (Budget.poll_conflict b);
  Budget.cancel b;
  Alcotest.(check string) "first tripper wins" "node_budget"
    (match Budget.reason b with
    | Some r -> Budget.reason_name r
    | None -> "none");
  match Budget.raise_if_exhausted b with
  | exception Budget.Expired -> ()
  | () -> Alcotest.fail "raise_if_exhausted did not raise"

let test_cancel_and_deadline () =
  let b = Budget.create ~node_budget:1000 () in
  Budget.cancel b;
  Alcotest.(check bool) "cancelled" true (Budget.exhausted b);
  Alcotest.(check string) "reason cancelled" "cancelled"
    (match Budget.reason b with
    | Some r -> Budget.reason_name r
    | None -> "none");
  let d = Budget.create ~timeout_ms:1 () in
  Unix.sleepf 0.01;
  (* check_now re-reads the clock without spending an effort tick. *)
  Alcotest.(check bool) "deadline passed" true (Budget.check_now d);
  Alcotest.(check string) "reason deadline" "deadline"
    (match Budget.reason d with
    | Some r -> Budget.reason_name r
    | None -> "none");
  Alcotest.(check int) "no nodes spent" 0 (Budget.nodes_spent d)

let test_outcome_helpers () =
  Alcotest.(check int) "value exact" 3 (Budget.value (Budget.Exact 3));
  Alcotest.(check int) "value bound" 4 (Budget.value (Budget.Bound_hit 4));
  Alcotest.(check bool) "is_exact" true (Budget.is_exact (Budget.Exact ()));
  Alcotest.(check bool) "is_exact bound" false
    (Budget.is_exact (Budget.Bound_hit ()));
  match Budget.map string_of_int (Budget.Bound_hit 7) with
  | Budget.Bound_hit "7" -> ()
  | _ -> Alcotest.fail "map should preserve the constructor"

(* The pigeonhole principle for 4 pigeons in 3 holes: unsatisfiable,
   and resolution-hard enough that any CDCL run passes through several
   above-level-0 conflicts (the only points the budget is polled — a
   final level-0 conflict returns Unsat directly).  A one-conflict
   budget therefore always expires mid-solve. *)
let pigeonhole_unsat = Sat_gen.pigeonhole 3

let test_cdcl_conflict_budget () =
  (let solver = Cdcl.make pigeonhole_unsat in
   match Cdcl.solve_assuming solver [] with
   | Cdcl.Unsat ->
       Alcotest.(check bool) "needs several conflicts" true
         ((Cdcl.stats solver).Cdcl.conflicts >= 3)
   | Cdcl.Sat _ -> Alcotest.fail "formula should be unsat");
  let budget = Budget.create ~conflict_budget:1 () in
  let solver = Cdcl.make ~budget pigeonhole_unsat in
  (match Cdcl.solve_assuming solver [] with
  | exception Budget.Expired -> ()
  | Cdcl.Unsat | Cdcl.Sat _ -> Alcotest.fail "conflict budget did not expire");
  Alcotest.(check string) "reason" "conflict_budget"
    (match Budget.reason budget with
    | Some r -> Budget.reason_name r
    | None -> "none")

(* ---- degradation soundness, end to end ---- *)

let small_execution prog =
  match Gen_progs.completed_trace prog with
  | Some t when Trace.n_events t <= 9 -> Some (Trace.to_execution t)
  | _ -> None

let with_engine engine f =
  let saved = Engine.current () in
  Engine.set engine;
  Fun.protect ~finally:(fun () -> Engine.set saved) f

let same_summary name (a : Relations.t) (b : Relations.t) =
  if
    a.Relations.feasible_count <> b.Relations.feasible_count
    || (not (Rel.equal a.Relations.before_some b.Relations.before_some))
    || (not (Rel.equal a.Relations.comparable_some b.Relations.comparable_some))
    || not (Rel.equal a.Relations.incomparable_some b.Relations.incomparable_some)
  then QCheck.Test.fail_reportf "%s: exact outcome differs from reference" name

(* A truncated pass may only shrink what it saw: every existential
   summary is a subset of the reference and the count never overshoots. *)
let sound_summary name (s : Relations.t) (ref_s : Relations.t) =
  if s.Relations.feasible_count > ref_s.Relations.feasible_count then
    QCheck.Test.fail_reportf "%s: degraded count overshoots (%d > %d)" name
      s.Relations.feasible_count ref_s.Relations.feasible_count;
  List.iter
    (fun (field, a, b) ->
      if not (Rel.subset a b) then
        QCheck.Test.fail_reportf "%s: degraded %s not a subset" name field)
    [
      ("before_some", s.Relations.before_some, ref_s.Relations.before_some);
      ( "comparable_some",
        s.Relations.comparable_some,
        ref_s.Relations.comparable_some );
      ( "incomparable_some",
        s.Relations.incomparable_some,
        ref_s.Relations.incomparable_some );
    ]

let is_must = function
  | Relations.MHB | Relations.MOW | Relations.MCW -> true
  | Relations.CHB | Relations.COW | Relations.CCW -> false

let check_outcomes name session ref_decide n =
  let d = Decide.of_session session in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then
        List.iter
          (fun rel ->
            let reference = Decide.holds ref_decide rel a b in
            match Decide.holds_outcome d rel a b with
            | Budget.Exact v ->
                if v <> reference then
                  QCheck.Test.fail_reportf "%s: exact %s disagrees on (%d,%d)"
                    name (Relations.relation_name rel) a b
            | Budget.Bound_hit v ->
                (* Sound direction only: must-relations may gain pairs,
                   could-relations may lose them — never the reverse. *)
                let sound = if is_must rel then reference <= v else v <= reference in
                if not sound then
                  QCheck.Test.fail_reportf
                    "%s: degraded %s unsound on (%d,%d): ref=%b got=%b" name
                    (Relations.relation_name rel) a b reference v)
          Relations.all_relations
    done
  done

let test_budget_monotonic =
  QCheck.Test.make ~name:"budgeted outcomes: exact = reference, degraded sound"
    ~count:8 Gen_progs.arbitrary_program (fun prog ->
      QCheck.assume (small_execution prog <> None);
      let x = Option.get (small_execution prog) in
      let sk = Skeleton.of_execution x in
      let n = Execution.n_events x in
      let ref_full = Relations.compute sk in
      let ref_reduced = Relations.compute_reduced sk in
      let ref_decide = Decide.create x in
      List.iter
        (fun engine ->
          with_engine engine @@ fun () ->
          List.iter
            (fun jobs ->
              List.iter
                (fun node_budget ->
                  let name =
                    Printf.sprintf "%s/jobs=%d/nodes=%d"
                      (Engine.to_string engine) jobs node_budget
                  in
                  let budget = Budget.create ~node_budget () in
                  let session =
                    Session.create ~jobs ~budget ~cache:Session.no_cache sk
                  in
                  (match Relations.of_session_outcome session with
                  | Budget.Exact s -> same_summary (name ^ " full") s ref_full
                  | Budget.Bound_hit s ->
                      sound_summary (name ^ " full") s ref_full);
                  (match Relations.of_session_reduced_outcome session with
                  | Budget.Exact s ->
                      same_summary (name ^ " reduced") s ref_reduced
                  | Budget.Bound_hit s ->
                      sound_summary (name ^ " reduced") s ref_reduced);
                  check_outcomes name session ref_decide n;
                  (* A generous budget must not change any answer. *)
                  if node_budget = 10_000_000 then begin
                    if Budget.exhausted budget then
                      QCheck.Test.fail_reportf "%s: generous budget tripped"
                        name;
                    match Relations.of_session_outcome session with
                    | Budget.Exact _ -> ()
                    | Budget.Bound_hit _ ->
                        QCheck.Test.fail_reportf
                          "%s: generous budget degraded" name
                  end)
                [ 1; 10_000_000 ])
            [ 1; 4 ])
        [ Engine.Naive; Engine.Packed; Engine.Sat ];
      true)

let suite =
  [
    Alcotest.test_case "create validates caps" `Quick test_create_validation;
    Alcotest.test_case "unlimited never trips" `Quick test_unlimited;
    Alcotest.test_case "node budget trips at limit" `Quick
      test_node_budget_trips_at_limit;
    Alcotest.test_case "cancel and deadline" `Quick test_cancel_and_deadline;
    Alcotest.test_case "outcome helpers" `Quick test_outcome_helpers;
    Alcotest.test_case "CDCL conflict budget" `Quick test_cdcl_conflict_budget;
    qcheck test_budget_monotonic;
  ]
