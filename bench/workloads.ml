(* Workload families for the benchmark harness (see DESIGN.md's
   per-experiment index).  All generators are deterministic. *)

(* ------------------------------------------------------------------ *)
(* 3-CNF families for the Theorem 1-4 reductions                       *)
(* ------------------------------------------------------------------ *)

(* Unsatisfiable implication chain over n variables:
   x1, (xi -> xi+1) for i < n, ~xn — 3-CNF via duplicated literals.
   Deciding the must-have relations on its reduction forces the engine to
   exhaust the space: the hard direction. *)
let unsat_chain n =
  Cnf.make ~num_vars:n
    ([ [ 1; 1; 1 ] ]
    @ List.init (n - 1) (fun i -> [ -(i + 1); -(i + 1); i + 2 ])
    @ [ [ -n; -n; -n ] ])

(* The same chain without the final negation: satisfiable (all true). *)
let sat_chain n =
  Cnf.make ~num_vars:n
    ([ [ 1; 1; 1 ] ]
    @ List.init (n - 1) (fun i -> [ -(i + 1); -(i + 1); i + 2 ]))

(* ------------------------------------------------------------------ *)
(* Programs for the Table 1 / exact-relations sweep                    *)
(* ------------------------------------------------------------------ *)

(* A semaphore-linked pipeline of [stages] plus [free] unconstrained
   writer processes: the chain pins down orderings while every free process
   multiplies the feasible-schedule count. *)
let pipeline_program ~stages ~free =
  let stage i =
    Ast.proc
      (Printf.sprintf "stage%d" i)
      (List.concat
         [
           (if i = 0 then [] else [ Ast.Sem_p (Printf.sprintf "s%d" i) ]);
           [ Ast.Assign (Printf.sprintf "x%d" i, Expr.Int i) ];
           (if i = stages - 1 then []
            else [ Ast.Sem_v (Printf.sprintf "s%d" (i + 1)) ]);
         ])
  in
  let free_proc i =
    Ast.proc
      (Printf.sprintf "free%d" i)
      [ Ast.Assign (Printf.sprintf "y%d" i, Expr.Int i) ]
  in
  Ast.program
    (List.init stages stage @ List.init free free_proc)

(* ------------------------------------------------------------------ *)
(* Semaphore traces for the HMW comparison                             *)
(* ------------------------------------------------------------------ *)

(* [k] producer/consumer pairs sharing one semaphore: plenty of V/P events
   whose pairings can vary between feasible executions. *)
let hmw_program ~pairs =
  let producer i =
    Ast.proc (Printf.sprintf "prod%d" i) [ Ast.Skip None; Ast.Sem_v "s" ]
  in
  let consumer i =
    Ast.proc (Printf.sprintf "cons%d" i) [ Ast.Sem_p "s"; Ast.Skip None ]
  in
  Ast.program
    (List.init pairs producer @ List.init pairs consumer)

(* ------------------------------------------------------------------ *)
(* Race-detection workloads                                            *)
(* ------------------------------------------------------------------ *)

(* [racy] unsynchronized writer pairs plus [safe] semaphore-ordered pairs:
   ground truth is racy pairs racy, safe pairs not. *)
let race_program ~racy ~safe =
  let racy_pair i =
    let v = Printf.sprintf "r%d" i in
    [
      Ast.proc (Printf.sprintf "rw%d_a" i) [ Ast.Assign (v, Expr.Int 1) ];
      Ast.proc (Printf.sprintf "rw%d_b" i) [ Ast.Assign (v, Expr.Int 2) ];
    ]
  in
  let safe_pair i =
    let v = Printf.sprintf "w%d" i in
    let s = Printf.sprintf "l%d" i in
    [
      Ast.proc
        (Printf.sprintf "sw%d_a" i)
        [ Ast.Assign (v, Expr.Int 1); Ast.Sem_v s ];
      Ast.proc
        (Printf.sprintf "sw%d_b" i)
        [ Ast.Sem_p s; Ast.Assign (v, Expr.Int 2) ];
    ]
  in
  Ast.program
    (List.concat
       (List.init racy racy_pair)
    @ List.concat (List.init safe safe_pair))

(* The observed-pairing blind spot (one hidden race): writer's V pairs
   with the reader's P in the observed trace, hiding the race from
   vector clocks. *)
let hidden_race_program =
  Ast.program
    [
      Ast.proc "writer" [ Ast.Assign ("x", Expr.Int 1); Ast.Sem_v "s" ];
      Ast.proc "helper" [ Ast.Sem_v "s" ];
      Ast.proc "reader" [ Ast.Sem_p "s"; Ast.Assign ("x", Expr.Int 2) ];
    ]

let hidden_race_trace () =
  let t =
    Interp.run ~policy:(Sched.Replay [ 0; 0; 2; 2; 1 ]) hidden_race_program
  in
  match t.Trace.outcome with
  | Trace.Completed -> t
  | _ -> invalid_arg "Workloads.hidden_race_trace: replay failed"

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let trace_of program =
  let t = Interp.run program in
  match t.Trace.outcome with
  | Trace.Completed -> t
  | _ -> invalid_arg "Workloads.trace_of: program did not complete"

let skeleton_of program =
  Skeleton.of_execution (Trace.to_execution (trace_of program))

(* ------------------------------------------------------------------ *)
(* Static-analysis workloads (loop-free Post/Wait programs)            *)
(* ------------------------------------------------------------------ *)

(* A broadcast chain: process i waits for e(i-1) and posts e(i).  Every
   ordering is static (unique posts), so the dataflow should recover the
   full chain. *)
let broadcast_chain ~stages =
  Ast.program
    (List.init stages (fun i ->
         Ast.proc
           (Printf.sprintf "stage%d" i)
           (List.concat
              [
                (if i = 0 then [] else [ Ast.Wait (Printf.sprintf "e%d" i) ]);
                [ Ast.Assign (Printf.sprintf "x%d" i, Expr.Int i) ];
                (if i = stages - 1 then []
                 else [ Ast.Post (Printf.sprintf "e%d" (i + 1)) ]);
              ])))

(* The same chain with every post duplicated in a helper process: the
   triggering post is ambiguous, so the static analysis must drop the
   per-post guarantees while the exact engine keeps the chain. *)
let broadcast_chain_ambiguous ~stages =
  let base = broadcast_chain ~stages in
  let helpers =
    List.init (stages - 1) (fun i ->
        Ast.proc
          (Printf.sprintf "helper%d" i)
          [ Ast.Post (Printf.sprintf "e%d" (i + 1)) ])
  in
  { base with Ast.procs = base.Ast.procs @ helpers }

(* ------------------------------------------------------------------ *)
(* Streaming triage workloads (E22)                                    *)
(* ------------------------------------------------------------------ *)

(* The [Progen] big-trace families at bench scale: seeded, deterministic
   traces with planted adjacent-write races among an ocean of
   synchronization-ordered conflicting pairs — the workload the tiered
   triage pipeline answers without ever building an event-pair matrix. *)
let big_trace_families =
  [ Progen.Pc_mesh; Progen.Server_logs; Progen.Fork_join ]

let big_trace family ~events = Progen.big_trace ~family ~events ~seed:42
