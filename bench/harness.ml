(* Timing helpers for the benchmark harness.

   Two measurement regimes:
   - [bechamel_group] for polynomial-time algorithms (microsecond scale):
     bechamel's OLS estimate over many runs;
   - [time_once] / [sweep] for the exponential exact engines, where a
     single run already takes milliseconds to minutes and repetition is
     pointless.  Sweeps stop when a run exceeds the per-point budget, like
     the timeout column of a complexity table. *)

let clock_ns () = Monotonic_clock.now ()

let time_once f =
  let t0 = clock_ns () in
  let r = f () in
  let t1 = clock_ns () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1e9)

let pp_time ppf seconds =
  if seconds < 1e-6 then Format.fprintf ppf "%8.1fns" (seconds *. 1e9)
  else if seconds < 1e-3 then Format.fprintf ppf "%8.1fus" (seconds *. 1e6)
  else if seconds < 1.0 then Format.fprintf ppf "%8.2fms" (seconds *. 1e3)
  else Format.fprintf ppf "%8.2fs " seconds

let time_string seconds = Format.asprintf "%a" pp_time seconds

(* Runs [f] on each size in order.  Stops early when the measurements are
   exponential and the projected next point would blow the budget: with the
   last two times t' and t, the next is projected at t * (t/t')^2 — growth
   usually accelerates on these engines, so the square is the safer bet. *)
let sweep ~budget ~sizes f =
  let rec go acc prev = function
    | [] -> List.rev acc
    | size :: rest ->
        let row, seconds = time_once (fun () -> f size) in
        let acc = (size, row, seconds) :: acc in
        let projected =
          match prev with
          | None -> seconds *. 10.
          | Some prev_seconds ->
              let ratio = Float.max 2.0 (seconds /. Float.max 1e-9 prev_seconds) in
              seconds *. (ratio ** 1.5)
        in
        if seconds > budget || projected > budget then List.rev acc
        else go acc (Some seconds) rest
  in
  go [] None sizes

(* Telemetry-instrumented measurement: one timed run that also fills a
   fresh report, plus the compact JSON to embed in a bench row — so a
   regression in BENCH_exact_engine.json is attributable ("memo hit rate
   dropped" vs "more nodes expanded") instead of a bare wall-clock. *)
let time_with_stats f =
  let tel = Telemetry.create () in
  let r, seconds = time_once (fun () -> f tel) in
  (r, seconds, tel)

let telemetry_json tel = Jsonout.to_string (Telemetry.to_json tel)

(* Bechamel: estimated ns/run for each named thunk. *)
let bechamel_group ?(quota = 0.25) tests =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let grouped =
    Test.make_grouped ~name:"g"
      (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) tests)
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  List.filter_map
    (fun (name, _) ->
      match Hashtbl.find_opt results ("g/" ^ name) with
      | None -> None
      | Some est -> (
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Some (name, ns /. 1e9)
          | _ -> None))
    tests

(* Table rendering: fixed-width columns, markdown-ish. *)
let table ~title ~header rows =
  Format.printf "@.== %s ==@." title;
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    Format.printf "| %s |@."
      (String.concat " | "
         (List.map2
            (fun w cell -> cell ^ String.make (w - String.length cell) ' ')
            widths row))
  in
  print_row header;
  Format.printf "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows
