(* Benchmark harness: regenerates the content or the complexity claim of
   every "evaluation" artifact in the paper (see DESIGN.md, per-experiment
   index E1-E15, and EXPERIMENTS.md for the recorded outcomes).

   The paper is a complexity paper: its tables are Table 1 (the six
   ordering relations) and Figure 1 (the task-graph blind spot); its
   "results" are Theorems 1-4.  Accordingly the harness reports (a) the
   relations themselves on reference workloads, (b) exponential growth of
   the exact engines on the reduction families, against (c) the flat cost
   of the polynomial approximations and the DPLL oracle on the very same
   instances. *)

(* Per-sweep-point time budget.  The default lets every sweep reach the
   row where the exponential wall is unmistakable (a few minutes total);
   EO_BENCH_BUDGET=5 gives a quick pass.  Parsing (and the
   malformed-value warning) lives in [Config], shared with the CLI. *)
let default_budget = 250.0
let budget = Config.bench_budget ~default:default_budget

(* EO_BENCH_QUICK=1 runs only the experiments a CI smoke pass needs: the
   reference tables plus the engine-optimization sweep and the scorecard.
   (E17, the SAT substrate, is not budget-gated and dominates a full run.) *)
let quick = Config.bench_quick ()

let header title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* E1 — Table 1: the six relations, exact, and their enumeration cost  *)
(* ------------------------------------------------------------------ *)

let e1_table1 () =
  header "E1  Table 1: exact ordering relations (enumeration engine)";
  (* The reference matrices on the 3-stage pipeline with one free process. *)
  let tr = Workloads.trace_of (Workloads.pipeline_program ~stages:3 ~free:1) in
  let x = Trace.to_execution tr in
  let sk = Skeleton.of_execution x in
  let s = Relations.compute sk in
  Format.printf "%a@." Relations.pp_summary (s, x.Execution.events);
  (* Growth of |F(P)| and the cost of exhausting it. *)
  let rows =
    Harness.sweep ~budget ~sizes:[ 1; 2; 3; 4; 5; 6; 7 ] (fun free ->
        let sk =
          Workloads.skeleton_of (Workloads.pipeline_program ~stages:3 ~free)
        in
        let s = Relations.compute sk in
        (sk.Skeleton.n, s.Relations.feasible_count))
  in
  Harness.table ~title:"exact Table-1 computation vs trace size"
    ~header:[ "free procs"; "events"; "|F(P)| schedules"; "time" ]
    (List.map
       (fun (size, (events, count), t) ->
         [ string_of_int size; string_of_int events; string_of_int count;
           Harness.time_string t ])
       rows)

(* ------------------------------------------------------------------ *)
(* E2/E3 — Theorems 1 and 2: semaphore reductions                      *)
(* ------------------------------------------------------------------ *)

let reduction_sem_row formula =
  let red = Reduction_sem.build formula in
  let tr = Reduction_sem.trace red in
  let a, b = Reduction_sem.events_ab red tr in
  let d = Decide.create (Trace.to_execution tr) in
  (tr, d, a, b)

let e2_theorem1 () =
  header
    "E2  Theorem 1: a MHB b on the semaphore reduction (co-NP-hard direction)";
  let rows =
    Harness.sweep ~budget ~sizes:[ 1; 2; 3; 4 ] (fun n ->
        let formula = Workloads.unsat_chain n in
        let tr, d, a, b = reduction_sem_row formula in
        let mhb, t_exact = Harness.time_once (fun () -> Decide.mhb d a b) in
        let sat, t_dpll =
          Harness.time_once (fun () -> Dpll.is_satisfiable formula)
        in
        (Trace.n_events tr, mhb, t_exact, sat, t_dpll))
  in
  Harness.table
    ~title:"UNSAT chain family: exact MHB vs DPLL on the same formula"
    ~header:
      [ "n vars"; "events"; "a MHB b"; "exact time"; "DPLL SAT?"; "DPLL time" ]
    (List.map
       (fun (n, (events, mhb, t_exact, sat, t_dpll), _) ->
         [
           string_of_int n; string_of_int events; string_of_bool mhb;
           Harness.time_string t_exact; string_of_bool sat;
           Harness.time_string t_dpll;
         ])
       rows)

let e3_theorem2 () =
  header
    "E3  Theorem 2: b CHB a on the semaphore reduction (NP-hard direction)";
  let run family name ~sizes =
    let rows =
      Harness.sweep ~budget ~sizes (fun n ->
          let formula = family n in
          let tr, d, a, b = reduction_sem_row formula in
          let chb, t = Harness.time_once (fun () -> Decide.chb d b a) in
          (Trace.n_events tr, chb, t))
    in
    Harness.table
      ~title:(name ^ " chain family: b CHB a iff satisfiable")
      ~header:[ "n vars"; "events"; "b CHB a"; "time" ]
      (List.map
         (fun (n, (events, chb, t), _) ->
           [ string_of_int n; string_of_int events; string_of_bool chb;
             Harness.time_string t ])
         rows)
  in
  run Workloads.sat_chain "SAT" ~sizes:[ 1; 2; 3; 4; 5; 6 ];
  run Workloads.unsat_chain "UNSAT" ~sizes:[ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* E4/E5 — Theorems 3 and 4: event-style reductions                    *)
(* ------------------------------------------------------------------ *)

let reduction_evt_row formula =
  let red = Reduction_evt.build formula in
  let tr = Reduction_evt.trace red in
  let a, b = Reduction_evt.events_ab red tr in
  let d = Decide.create (Trace.to_execution tr) in
  (tr, d, a, b)

let e4_theorem3 () =
  header "E4  Theorem 3: a MHB b on the Post/Wait/Clear reduction";
  let rows =
    Harness.sweep ~budget ~sizes:[ 1; 2; 3 ] (fun n ->
        let formula = Workloads.unsat_chain n in
        let tr, d, a, b = reduction_evt_row formula in
        let mhb, t = Harness.time_once (fun () -> Decide.mhb d a b) in
        (Trace.n_events tr, mhb, t))
  in
  Harness.table ~title:"UNSAT chain family, event-style synchronization"
    ~header:[ "n vars"; "events"; "a MHB b"; "time" ]
    (List.map
       (fun (n, (events, mhb, t), _) ->
         [ string_of_int n; string_of_int events; string_of_bool mhb;
           Harness.time_string t ])
       rows)

let e5_theorem4 () =
  header "E5  Theorem 4: b CHB a on the Post/Wait/Clear reduction";
  let rows =
    Harness.sweep ~budget ~sizes:[ 1; 2; 3; 4; 5; 6 ] (fun n ->
        let formula = Workloads.sat_chain n in
        let tr, d, a, b = reduction_evt_row formula in
        let chb, t = Harness.time_once (fun () -> Decide.chb d b a) in
        (Trace.n_events tr, chb, t))
  in
  Harness.table ~title:"SAT chain family, event-style synchronization"
    ~header:[ "n vars"; "events"; "b CHB a"; "time" ]
    (List.map
       (fun (n, (events, chb, t), _) ->
         [ string_of_int n; string_of_int events; string_of_bool chb;
           Harness.time_string t ])
       rows)

(* ------------------------------------------------------------------ *)
(* E6 — Figure 1: EGP task graph vs exact engine                       *)
(* ------------------------------------------------------------------ *)

let e6_figure1 () =
  header "E6  Figure 1: the task graph misses dependence-enforced orderings";
  let tr = Figure1.trace () in
  let x = Trace.to_execution tr in
  let ev = Figure1.events tr in
  let egp = Egp.build x in
  let d = Decide.create x in
  let rows =
    List.map
      (fun (name, a, b) ->
        [
          name;
          string_of_bool (Decide.mhb d a b);
          string_of_bool (Egp.guaranteed_before egp a b);
        ])
      [
        ("post1 -> post2", ev.Figure1.post1, ev.Figure1.post2);
        ("post1 -> wait3", ev.Figure1.post1, ev.Figure1.wait3);
        ("write_x -> post2", ev.Figure1.write_x, ev.Figure1.post2);
        ("post1 -> write_x", ev.Figure1.post1, ev.Figure1.write_x);
      ]
  in
  Harness.table ~title:"orderings on the Figure 1 execution"
    ~header:[ "pair"; "exact MHB"; "EGP claims" ]
    rows;
  let timings =
    Harness.bechamel_group
      [
        ("egp-build", fun () -> ignore (Egp.build x));
        ( "exact-mhb-pair",
          fun () ->
            let d = Decide.create x in
            ignore (Decide.mhb d ev.Figure1.post1 ev.Figure1.post2) );
      ]
  in
  Harness.table ~title:"cost (per run)"
    ~header:[ "method"; "time" ]
    (List.map (fun (n, t) -> [ n; Harness.time_string t ]) timings)

(* ------------------------------------------------------------------ *)
(* E7 — HMW safe orderings vs exact MHB                                *)
(* ------------------------------------------------------------------ *)

let e7_hmw () =
  header "E7  Helmbold-McDowell-Wang safe orderings vs exact MHB";
  let rows =
    Harness.sweep ~budget ~sizes:[ 1; 2; 3; 4; 8; 16 ] (fun pairs ->
        let prog = Workloads.hmw_program ~pairs in
        let tr = Workloads.trace_of prog in
        let x = Trace.to_execution tr in
        let h, t_hmw = Harness.time_once (fun () -> Hmw.of_execution x) in
        let exact_pairs, t_exact =
          if pairs <= 4 then begin
            let r = Reach.create (Skeleton.of_execution x) in
            Harness.time_once (fun () ->
                let count = ref 0 in
                let n = Execution.n_events x in
                for a = 0 to n - 1 do
                  for b = 0 to n - 1 do
                    if a <> b && Reach.must_before r a b then incr count
                  done
                done;
                !count)
          end
          else (-1, Float.nan)
        in
        ( Trace.n_events tr,
          Rel.pair_count h.Hmw.phase1,
          Rel.pair_count h.Hmw.phase3,
          t_hmw,
          exact_pairs,
          t_exact ))
  in
  Harness.table
    ~title:
      "producer/consumer pairs over one semaphore (exact column only for \
       small sizes)"
    ~header:
      [ "pairs"; "events"; "|phase1|"; "|phase3 safe|"; "HMW time";
        "|exact MHB|"; "exact time" ]
    (List.map
       (fun (pairs, (events, p1, p3, t_hmw, exact, t_exact), _) ->
         [
           string_of_int pairs; string_of_int events; string_of_int p1;
           string_of_int p3; Harness.time_string t_hmw;
           (if exact < 0 then "-" else string_of_int exact);
           (if Float.is_nan t_exact then "-" else Harness.time_string t_exact);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E8 — Section 5.3: hardness survives ignoring the dependences        *)
(* ------------------------------------------------------------------ *)

let e8_no_deps () =
  header "E8  Section 5.3: decisions with shared-data dependences ignored";
  let rows =
    List.map
      (fun n ->
        let formula = Workloads.unsat_chain n in
        let red = Reduction_sem.build formula in
        let tr = Reduction_sem.trace red in
        let a, b = Reduction_sem.events_ab red tr in
        let x = Trace.to_execution tr in
        let x_no_d =
          { x with Execution.dependences = Rel.create (Execution.n_events x) }
        in
        let with_d, t1 =
          Harness.time_once (fun () -> Decide.mhb (Decide.create x) a b)
        in
        let without_d, t2 =
          Harness.time_once (fun () -> Decide.mhb (Decide.create x_no_d) a b)
        in
        [
          string_of_int n;
          string_of_int (Rel.pair_count x.Execution.dependences);
          string_of_bool with_d; Harness.time_string t1;
          string_of_bool without_d; Harness.time_string t2;
        ])
      [ 1; 2; 3 ]
  in
  Harness.table
    ~title:"the reduction programs have |D| = 0, so verdicts and costs coincide"
    ~header:[ "n vars"; "|D|"; "MHB with D"; "time"; "MHB without D"; "time" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9 — Race detection: apparent vs feasible                           *)
(* ------------------------------------------------------------------ *)

let e9_races () =
  header "E9  Race detection: apparent (polynomial) vs feasible (exponential)";
  let rows =
    Harness.sweep ~budget ~sizes:[ 1; 2; 3; 4 ] (fun k ->
        let prog = Workloads.race_program ~racy:k ~safe:k in
        let x = Trace.to_execution (Workloads.trace_of prog) in
        let apparent, t_a =
          Harness.time_once (fun () -> List.length (Race.apparent_races x))
        in
        let feasible, t_f =
          Harness.time_once (fun () -> List.length (Race.feasible_races x))
        in
        (Execution.n_events x, apparent, t_a, feasible, t_f))
  in
  Harness.table
    ~title:
      "k unsynchronized + k semaphore-ordered writer pairs (truth: k races)"
    ~header:
      [ "k"; "events"; "apparent"; "apparent time"; "feasible";
        "feasible time" ]
    (List.map
       (fun (k, (events, a, ta, f, tf), _) ->
         [
           string_of_int k; string_of_int events; string_of_int a;
           Harness.time_string ta; string_of_int f; Harness.time_string tf;
         ])
       rows);
  (* The blind spot: observed pairing hides a race from vector clocks. *)
  let x = Trace.to_execution (Workloads.hidden_race_trace ()) in
  Harness.table ~title:"pairing blind spot (one real race)"
    ~header:[ "detector"; "races found" ]
    [
      [ "apparent (vector clock)";
        string_of_int (List.length (Race.apparent_races x)) ];
      [ "feasible (exact)";
        string_of_int (List.length (Race.feasible_races x)) ];
    ]

(* ------------------------------------------------------------------ *)
(* E10 — Ablation: schedule enumeration vs memoized state reachability *)
(* ------------------------------------------------------------------ *)

let e10_ablation () =
  header "E10  Ablation: naive schedule enumeration vs memoized state engine";
  let limit = 2_000_000 in
  let rows =
    Harness.sweep ~budget ~sizes:[ 1; 2 ] (fun n ->
        let formula = Workloads.sat_chain n in
        let red = Reduction_sem.build formula in
        let tr = Reduction_sem.trace red in
        let sk = Skeleton.of_execution (Trace.to_execution tr) in
        let enum_count, t_enum =
          Harness.time_once (fun () -> Enumerate.count ~limit sk)
        in
        let r = Reach.create sk in
        let dp_count, t_dp =
          Harness.time_once (fun () -> Reach.schedule_count r)
        in
        let states, t_states =
          Harness.time_once (fun () -> Reach.reachable_state_count r)
        in
        let por_limit = 100_000 in
        let por_reps, t_por =
          Harness.time_once (fun () ->
              Por.count_representatives ~limit:por_limit sk)
        in
        ( Trace.n_events tr, enum_count, t_enum, dp_count, t_dp, states,
          t_states, por_reps, t_por ))
  in
  Harness.table
    ~title:
      (Printf.sprintf
         "feasible schedules: enumerated (capped at %d) vs counted by DP over \
          states vs sleep-set representatives"
         limit)
    ~header:
      [ "n vars"; "events"; "enumerated"; "enum time"; "DP count"; "DP time";
        "states"; "walk time"; "POR reps"; "POR time" ]
    (List.map
       (fun (n, (events, ec, te, dc, td, st, ts, pr, tp), _) ->
         [
           string_of_int n; string_of_int events;
           (if ec >= limit then Printf.sprintf ">=%d" limit
            else string_of_int ec);
           Harness.time_string te;
           (if dc >= Reach.count_saturation then ">=10^18" else string_of_int dc);
           Harness.time_string td;
           string_of_int st; Harness.time_string ts;
           (if pr >= 100_000 then ">=100000" else string_of_int pr);
           Harness.time_string tp;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E12 — Static analysis (Callahan–Subhlok flavour) vs exact MHB       *)
(* ------------------------------------------------------------------ *)

let e12_static () =
  header "E12  Static guaranteed orderings (dataflow) vs exact MHB";
  let measure prog =
    let static, t_static =
      Harness.time_once (fun () -> Static_order.analyze prog)
    in
    let trace = Workloads.trace_of prog in
    let claims = Static_order.claims_on_trace static trace in
    let x = Trace.to_execution trace in
    let d = Decide.create x in
    let confirmed = List.for_all (fun (a, b) -> Decide.mhb d a b) claims in
    let exact_count, t_exact =
      Harness.time_once (fun () ->
          let n = Execution.n_events x in
          let count = ref 0 in
          for a = 0 to n - 1 do
            for b = 0 to n - 1 do
              if a <> b && Decide.mhb d a b then incr count
            done
          done;
          !count)
    in
    (Trace.n_events trace, List.length claims, confirmed, t_static,
     exact_count, t_exact)
  in
  let rows =
    Harness.sweep ~budget ~sizes:[ 2; 3; 4; 5 ] (fun stages ->
        let unique = measure (Workloads.broadcast_chain ~stages) in
        let ambiguous =
          measure (Workloads.broadcast_chain_ambiguous ~stages)
        in
        (unique, ambiguous))
  in
  Harness.table
    ~title:
      "broadcast chains: unique posts (static sees the chain) vs duplicated \
       posts (static must stay silent); claims always confirmed by the \
       exact engine"
    ~header:
      [ "stages"; "events"; "static claims"; "sound"; "static time";
        "|exact MHB|"; "exact time"; "ambig claims"; "ambig |MHB|" ]
    (List.map
       (fun (stages, ((ev, claims, sound, ts, exact, te), (_, aclaims, _, _, aexact, _)), _) ->
         [
           string_of_int stages; string_of_int ev; string_of_int claims;
           string_of_bool sound; Harness.time_string ts; string_of_int exact;
           Harness.time_string te; string_of_int aclaims;
           string_of_int aexact;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E13 — SAT via the ordering oracle (the reduction run forward)       *)
(* ------------------------------------------------------------------ *)

let e13_sat_via_ordering () =
  header "E13  Solving SAT with the could-have-happened-before oracle";
  let rows =
    Harness.sweep ~budget ~sizes:[ 1; 2; 3 ] (fun n ->
        let formula = Workloads.sat_chain n in
        let sat, t_oracle =
          Harness.time_once (fun () -> Sat_via_ordering.is_satisfiable formula)
        in
        let _, t_dpll =
          Harness.time_once (fun () -> Dpll.is_satisfiable formula)
        in
        let model_ok =
          match Sat_via_ordering.solve formula with
          | Some a -> Cnf.eval a formula
          | None -> false
        in
        (sat, model_ok, t_oracle, t_dpll))
  in
  Harness.table
    ~title:"SAT chains decided by the ordering engine, model extracted from \
            the witness schedule"
    ~header:[ "n vars"; "sat"; "model valid"; "oracle time"; "DPLL time" ]
    (List.map
       (fun (n, (sat, ok, t1, t2), _) ->
         [
           string_of_int n; string_of_bool sat; string_of_bool ok;
           Harness.time_string t1; Harness.time_string t2;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E11 — Baseline micro-benchmarks: the polynomial toolbox             *)
(* ------------------------------------------------------------------ *)

let e11_polynomial_toolbox () =
  header "E11  Polynomial toolbox on a 64-event trace (bechamel, per run)";
  let prog = Workloads.hmw_program ~pairs:16 in
  let x = Trace.to_execution (Workloads.trace_of prog) in
  let unsat8 = Workloads.unsat_chain 8 in
  let timings =
    Harness.bechamel_group
      [
        ("vector-clocks", fun () -> ignore (Vclock.of_execution x));
        ("lamport-clocks", fun () -> ignore (Lamport.of_execution x));
        ("hmw-3-phases", fun () -> ignore (Hmw.of_execution x));
        ("egp-task-graph", fun () -> ignore (Egp.build x));
        ("dpll-unsat-chain-8", fun () -> ignore (Dpll.is_satisfiable unsat8));
      ]
  in
  Harness.table ~title:"per-run cost"
    ~header:[ "algorithm"; "time" ]
    (List.map (fun (n, t) -> [ n; Harness.time_string t ]) timings)

(* ------------------------------------------------------------------ *)
(* E15 — Program-level exploration vs trace-level feasibility          *)
(* ------------------------------------------------------------------ *)

let e15_explore () =
  header "E15  All program executions vs feasible re-executions of one trace";
  let rows =
    Harness.sweep ~budget ~sizes:[ 1; 2; 3; 4; 5; 6 ] (fun free ->
        let prog = Workloads.pipeline_program ~stages:3 ~free in
        let stats, t_prog = Harness.time_once (fun () -> Explore.explore prog) in
        let sk = Workloads.skeleton_of prog in
        let r = Reach.create sk in
        let feasible, t_trace =
          Harness.time_once (fun () -> Reach.schedule_count r)
        in
        ( sk.Skeleton.n,
          stats.Explore.completed_paths,
          t_prog,
          feasible,
          t_trace ))
  in
  Harness.table
    ~title:
      "pipeline + free writers: the quantifiers coincide here (disjoint \
       variables), the costs do not"
    ~header:
      [ "free procs"; "events"; "program execs"; "explore time";
        "feasible schedules"; "reach time" ]
    (List.map
       (fun (free, (events, pe, tp, fs, tf), _) ->
         [
           string_of_int free; string_of_int events; string_of_int pe;
           Harness.time_string tp; string_of_int fs; Harness.time_string tf;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E17 — The SAT substrate: DPLL vs CDCL across the 3-CNF transition   *)
(* ------------------------------------------------------------------ *)

let e17_sat_substrate () =
  header "E17  SAT substrate: DPLL vs CDCL on random 3-CNF (n = 60)";
  let n = 60 in
  let samples = 10 in
  let rows =
    List.map
      (fun ratio ->
        let m = int_of_float (ratio *. float_of_int n) in
        let sat_count = ref 0 in
        let _, t_cdcl =
          Harness.time_once (fun () ->
              for seed = 0 to samples - 1 do
                let f =
                  Sat_gen.random_3cnf ~seed:(seed + (m * 100)) ~num_vars:n
                    ~num_clauses:m
                in
                if Cdcl.is_satisfiable f then incr sat_count
              done)
        in
        let _, t_dpll =
          Harness.time_once (fun () ->
              for seed = 0 to samples - 1 do
                let f =
                  Sat_gen.random_3cnf ~seed:(seed + (m * 100)) ~num_vars:n
                    ~num_clauses:m
                in
                ignore (Dpll.is_satisfiable f)
              done)
        in
        [
          Printf.sprintf "%.1f" ratio; string_of_int m;
          Printf.sprintf "%d/%d" !sat_count samples;
          Harness.time_string (t_cdcl /. float_of_int samples);
          Harness.time_string (t_dpll /. float_of_int samples);
        ])
      [ 2.0; 3.0; 4.0; 4.3; 5.0; 6.0 ]
  in
  Harness.table
    ~title:"clause/variable ratio sweep (the 4.26 phase transition)"
    ~header:[ "m/n"; "clauses"; "SAT rate"; "CDCL per inst"; "DPLL per inst" ]
    rows;
  let _, stats = Cdcl.solve_with_stats (Sat_gen.pigeonhole 6) in
  Format.printf
    "pigeonhole(6): UNSAT with %d conflicts, %d learned clauses, %d restarts@."
    stats.Cdcl.conflicts stats.Cdcl.learned stats.Cdcl.restarts

(* ------------------------------------------------------------------ *)
(* E18 — Section 5.1's single-semaphore remark                         *)
(* ------------------------------------------------------------------ *)

let e18_single_semaphore () =
  header "E18  One counting semaphore: SS7 sequencing as event ordering";
  let rows =
    Harness.sweep ~budget ~sizes:[ 2; 3; 4; 5; 6 ] (fun tasks ->
        let samples = 20 in
        let agreements = ref 0 in
        let feasibles = ref 0 in
        let _, t =
          Harness.time_once (fun () ->
              for seed = 0 to samples - 1 do
                let inst =
                  Sequencing.random ~seed:(seed + (tasks * 1000)) ~tasks
                in
                let chb, feas = Reduction_single_sem.check inst in
                if chb = feas then incr agreements;
                if feas then incr feasibles
              done)
        in
        (!agreements, samples, !feasibles, t))
  in
  Harness.table
    ~title:
      "random SS7 instances: b CHB a on the one-semaphore program vs the \
       exact sequencing oracle"
    ~header:
      [ "tasks"; "agreement"; "feasible"; "time (20 instances)" ]
    (List.map
       (fun (tasks, (agree, samples, feas, t), _) ->
         [
           string_of_int tasks;
           Printf.sprintf "%d/%d" agree samples;
           Printf.sprintf "%d/%d" feas samples;
           Harness.time_string t;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E19 — The exact-engine optimizations: packed vs seed, 1 vs N domains *)
(* ------------------------------------------------------------------ *)

(* Measures the tentpole optimizations against the seed implementations
   they replaced, and cross-checks that every pair of measurements agrees
   on its result — a speedup that changes the answer would be worthless.
   Machine-readable results land in BENCH_exact_engine.json, including the
   CPU count: on a single-core host the domain rows record the (honest)
   overhead of parallelism without available hardware, not a speedup. *)

(* E19 and E20 share one machine-readable artifact: rows accumulate here
   and [write_exact_engine_json] emits BENCH_exact_engine.json once both
   experiments have contributed. *)
let exact_rows = ref []
let exact_mismatches = ref 0

let expect_exact name a b =
  if a <> b then begin
    incr exact_mismatches;
    Format.printf "MISMATCH in %s: %d <> %d@." name a b
  end

let exact_json fmt =
  Format.kasprintf (fun s -> exact_rows := s :: !exact_rows) fmt

let e19_exact_engine () =
  header "E19  Exact-engine optimizations: bitset-packed search, worker domains";
  let jobs = 2 in
  let expect = expect_exact in
  let json = exact_json in

  (* Part 1 — the Theorem 1/2 reduction families, where the per-node cost
     of the search dominates: naive vs packed on capped enumeration and
     sleep-set POR, plus the memoized counting DP (packed keys). *)
  let enum_limit = 200_000 and por_limit = 20_000 in
  let saved_engine = Engine.current () in
  let run_family fname family ~sizes =
    let rows =
      Harness.sweep ~budget ~sizes (fun n ->
          let red = Reduction_sem.build (family n) in
          let tr = Reduction_sem.trace red in
          let sk = Skeleton.of_execution (Trace.to_execution tr) in
          Engine.set Engine.Naive;
          let en, t_en =
            Harness.time_once (fun () -> Enumerate.count ~limit:enum_limit sk)
          in
          let pn, t_pn =
            Harness.time_once (fun () ->
                Por.count_representatives ~limit:por_limit sk)
          in
          Engine.set Engine.Packed;
          let ep, t_ep =
            Harness.time_once (fun () -> Enumerate.count ~limit:enum_limit sk)
          in
          let pp, t_pp =
            Harness.time_once (fun () ->
                Por.count_representatives ~limit:por_limit sk)
          in
          expect (Printf.sprintf "%s(%d) enumerate" fname n) en ep;
          expect (Printf.sprintf "%s(%d) POR" fname n) pn pp;
          let dp, t_dp =
            Harness.time_once (fun () -> Reach.schedule_count (Reach.create sk))
          in
          json
            {|    {"kind": "search", "family": %S, "n_vars": %d, "events": %d, "enumerated": %d, "enum_naive_s": %.6f, "enum_packed_s": %.6f, "por_reps": %d, "por_naive_s": %.6f, "por_packed_s": %.6f, "dp_count": %d, "dp_s": %.6f}|}
            fname n (Trace.n_events tr) ep t_en t_ep pp t_pn t_pp
            (min dp Reach.count_saturation)
            t_dp;
          (Trace.n_events tr, ep, t_en, t_ep, pp, t_pn, t_pp, t_dp))
    in
    Harness.table
      ~title:
        (fname
       ^ " reduction family: per-node search cost, seed vs packed (counts \
          capped)")
      ~header:
        [ "n vars"; "events"; "enum"; "naive"; "packed"; "POR reps";
          "naive"; "packed"; "DP time" ]
      (List.map
         (fun (n, (events, ec, ten, tep, pc, tpn, tpp, tdp), _) ->
           [
             string_of_int n; string_of_int events; string_of_int ec;
             Harness.time_string ten; Harness.time_string tep;
             string_of_int pc; Harness.time_string tpn;
             Harness.time_string tpp; Harness.time_string tdp;
           ])
         rows)
  in
  run_family "unsat_chain" Workloads.unsat_chain ~sizes:[ 1; 2; 3 ];
  run_family "sat_chain" Workloads.sat_chain ~sizes:[ 1; 2; 3 ];

  (* Part 2 — domain parallelism on the full (uncapped) Table-1 engines,
     over the pipeline family whose class structure keeps exact runs
     tractable.  Results must be bit-identical across worker counts. *)
  let rows =
    Harness.sweep ~budget ~sizes:[ 2; 3; 4; 5 ] (fun free ->
        let sk =
          Workloads.skeleton_of (Workloads.pipeline_program ~stages:3 ~free)
        in
        (* The runs are telemetry-instrumented (the counters are designed
           to cost nothing measurable) so every row records *where* its
           time went, not just how much there was. *)
        let s1, t_seq, _ =
          Harness.time_with_stats (fun tel -> Relations.compute ~stats:tel sk)
        in
        let sj, t_par, tel_compute =
          Harness.time_with_stats (fun tel ->
              Relations.compute ~jobs ~stats:tel sk)
        in
        let r1, t_rseq, _ =
          Harness.time_with_stats (fun tel ->
              Relations.compute_reduced ~stats:tel sk)
        in
        let rj, t_rpar, tel_reduced =
          Harness.time_with_stats (fun tel ->
              Relations.compute_reduced ~jobs ~stats:tel sk)
        in
        let name what =
          Printf.sprintf "pipeline(free=%d) %s jobs=%d" free what jobs
        in
        expect (name "compute count") s1.Relations.feasible_count
          sj.Relations.feasible_count;
        expect (name "compute classes") s1.Relations.distinct_classes
          sj.Relations.distinct_classes;
        expect (name "reduced count") r1.Relations.feasible_count
          rj.Relations.feasible_count;
        expect (name "reduced classes") r1.Relations.distinct_classes
          rj.Relations.distinct_classes;
        List.iter
          (fun rel ->
            if
              not
                (Rel.equal (Relations.to_rel s1 rel) (Relations.to_rel sj rel)
                && Rel.equal (Relations.to_rel r1 rel)
                     (Relations.to_rel rj rel))
            then begin
              incr exact_mismatches;
              Format.printf "MISMATCH in %s relation matrices@."
                (name (Relations.relation_name rel))
            end)
          Relations.all_relations;
        json
          {|    {"kind": "parallel", "family": "pipeline", "free": %d, "events": %d, "feasible": %d, "classes": %d, "jobs": %d, "compute_seq_s": %.6f, "compute_par_s": %.6f, "reduced_seq_s": %.6f, "reduced_par_s": %.6f, "telemetry_compute": %s, "telemetry_reduced": %s}|}
          free sk.Skeleton.n s1.Relations.feasible_count
          s1.Relations.distinct_classes jobs t_seq t_par t_rseq t_rpar
          (Harness.telemetry_json tel_compute)
          (Harness.telemetry_json tel_reduced);
        (sk.Skeleton.n, s1.Relations.feasible_count, t_seq, t_par, t_rseq,
         t_rpar))
  in
  Engine.set saved_engine;
  Harness.table
    ~title:
      (Printf.sprintf
         "full Table-1 engines, 1 domain vs %d (identical results enforced)"
         jobs)
    ~header:
      [ "free"; "events"; "|F(P)|"; "compute x1";
        Printf.sprintf "compute x%d" jobs; "reduced x1";
        Printf.sprintf "reduced x%d" jobs ]
    (List.map
       (fun (free, (events, count, ts, tp, trs, trp), _) ->
         [
           string_of_int free; string_of_int events; string_of_int count;
           Harness.time_string ts; Harness.time_string tp;
           Harness.time_string trs; Harness.time_string trp;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E20 — Sessions: amortized multi-query analysis vs per-call engines  *)
(* ------------------------------------------------------------------ *)

(* One session enumerates F(P) once (and memoizes one reachability DP);
   the legacy per-call surface re-enumerates for every question.  A
   client that asks the full Table-1 battery — reduced 6-relation
   summary plus the exact race set — [rounds] times over should see the
   session amortize to roughly one pass, so the per-call/session ratio
   approaches [rounds].  Answers are cross-checked: an amortization that
   changed a race set would be worthless. *)
let e20_sessions () =
  header "E20  Shared sessions: one enumeration pass, every query";
  let rounds = 5 in
  let expect = expect_exact in
  let rows =
    Harness.sweep ~budget ~sizes:[ 2; 3; 4; 5 ] (fun free ->
        let x =
          Trace.to_execution
            (Workloads.trace_of (Workloads.pipeline_program ~stages:3 ~free))
        in
        let sk = Skeleton.of_execution x in
        (* Per-call: every round pays a fresh enumeration for the summary
           and another full pass inside the race decision procedure. *)
        let percall = ref None in
        let _, t_percall =
          Harness.time_once (fun () ->
              for _ = 1 to rounds do
                let s = Relations.compute_reduced sk in
                let races = Race.feasible_races x in
                percall := Some (s, races)
              done)
        in
        (* Session: the same battery against one session whose in-memory
           cache answers every round after the first from the stored
           summary and race set.  The cache is process-global, so clear
           it on both sides of the measurement. *)
        Session.clear_memory_cache ();
        let insession = ref None in
        let _, t_session =
          Harness.time_once (fun () ->
              let session =
                Session.of_execution
                  ~cache:{ Session.memory = true; Session.dir = None }
                  x
              in
              for _ = 1 to rounds do
                let s = Relations.of_session_reduced session in
                let races = Race.feasible_races_session session in
                insession := Some (s, races)
              done)
        in
        Session.clear_memory_cache ();
        let (s_pc, races_pc), (s_se, races_se) =
          (Option.get !percall, Option.get !insession)
        in
        let name what = Printf.sprintf "sessions(free=%d) %s" free what in
        expect (name "feasible count") s_pc.Relations.feasible_count
          s_se.Relations.feasible_count;
        expect (name "classes") s_pc.Relations.distinct_classes
          s_se.Relations.distinct_classes;
        expect (name "races") (List.length races_pc) (List.length races_se);
        let speedup = if t_session > 0. then t_percall /. t_session else 0. in
        exact_json
          {|    {"kind": "session", "family": "pipeline", "free": %d, "events": %d, "rounds": %d, "feasible": %d, "races": %d, "percall_s": %.6f, "session_s": %.6f, "speedup": %.2f}|}
          free sk.Skeleton.n rounds s_pc.Relations.feasible_count
          (List.length races_pc) t_percall t_session speedup;
        (sk.Skeleton.n, s_pc.Relations.feasible_count, List.length races_pc,
         t_percall, t_session, speedup))
  in
  Harness.table
    ~title:
      (Printf.sprintf
         "%d rounds of (reduced summary + races): per-call vs one session"
         rounds)
    ~header:
      [ "free"; "events"; "|F(P)|"; "races"; "per-call"; "session"; "speedup" ]
    (List.map
       (fun (free, (events, count, races, t_pc, t_se, speedup), _) ->
         [
           string_of_int free; string_of_int events; string_of_int count;
           string_of_int races; Harness.time_string t_pc;
           Harness.time_string t_se; Printf.sprintf "%.1fx" speedup;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E21 — SAT engine: compiled feasibility vs state-space search        *)
(* ------------------------------------------------------------------ *)

(* The Theorem 1/3 reductions are the adversarial workloads: deciding
   MHB(a,b) on them IS deciding (un)satisfiability of the reduced
   formula, so schedule enumeration must exhaust the execution space.
   The sat engine compiles the same question back to CNF and lets
   conflict-driven learning prune it; the memoized reach engine sits in
   between.  Rows land in BENCH_exact_engine.json as kind "sat" with
   the encoder/solver telemetry embedded, and the two engines' verdicts
   are cross-checked like every other pair in this artifact. *)
let e21_sat_engine () =
  header "E21  SAT engine: compiled feasibility vs state-space search";
  let enum_limit = 200_000 in
  let saved_engine = Engine.current () in
  let run_family fname ~sizes make =
    let rows =
      Harness.sweep ~budget ~sizes (fun n ->
          let tr, a, b = make n in
          let x = Trace.to_execution tr in
          let sk = Skeleton.of_execution x in
          (* The seed decision path: enumerate feasible schedules, up to
             the cap.  A truncated count means enumeration could not
             decide the pair within its schedule budget. *)
          let enumerated, t_enum =
            Harness.time_once (fun () -> Enumerate.count ~limit:enum_limit sk)
          in
          let truncated = enumerated >= enum_limit in
          let decide engine =
            Engine.set engine;
            Harness.time_with_stats (fun tel ->
                Telemetry.set_run tel ~engine:(Engine.to_string engine)
                  ~jobs:1;
                Decide.mhb (Decide.create ~stats:tel x) a b)
          in
          let mhb_reach, t_reach, tel_reach = decide Engine.Packed in
          let mhb_sat, t_sat, tel_sat = decide Engine.Sat in
          expect_exact
            (Printf.sprintf "%s(%d) MHB sat vs reach" fname n)
            (Bool.to_int mhb_sat) (Bool.to_int mhb_reach);
          exact_json
            {|    {"kind": "sat", "family": %S, "n_vars": %d, "events": %d, "mhb": %b, "enum_count": %d, "enum_truncated": %b, "enum_s": %.6f, "reach_s": %.6f, "sat_s": %.6f, "telemetry_reach": %s, "telemetry_sat": %s}|}
            fname n (Trace.n_events tr) mhb_sat enumerated truncated t_enum
            t_reach t_sat
            (Harness.telemetry_json tel_reach)
            (Harness.telemetry_json tel_sat);
          ( Trace.n_events tr, mhb_sat, enumerated, truncated, t_enum,
            t_reach, t_sat ))
    in
    Harness.table
      ~title:(fname ^ " reduction: decide MHB(a,b) — enumerate vs reach vs sat")
      ~header:
        [ "n vars"; "events"; "MHB"; "enum"; "enum t"; "reach t"; "sat t" ]
      (List.map
         (fun (n, (events, mhb, count, truncated, te, trc, ts), _) ->
           [
             string_of_int n; string_of_int events; string_of_bool mhb;
             (if truncated then Printf.sprintf ">=%d (cut)" count
              else string_of_int count);
             Harness.time_string te; Harness.time_string trc;
             Harness.time_string ts;
           ])
         rows)
  in
  let sem family n =
    let red = Reduction_sem.build (family n) in
    let tr = Reduction_sem.trace red in
    let a, b = Reduction_sem.events_ab red tr in
    (tr, a, b)
  in
  let evt family n =
    let red = Reduction_evt.build (family n) in
    let tr = Reduction_evt.trace red in
    let a, b = Reduction_evt.events_ab red tr in
    (tr, a, b)
  in
  run_family "unsat_chain(sem)" ~sizes:[ 1; 2; 3; 4 ]
    (sem Workloads.unsat_chain);
  run_family "sat_chain(sem)" ~sizes:[ 1; 2; 3; 4 ] (sem Workloads.sat_chain);
  run_family "unsat_chain(evt)" ~sizes:[ 1; 2; 3 ] (evt Workloads.unsat_chain);
  Engine.set saved_engine

(* Emitted after E19–E21 so the artifact carries every row kind; a
   result mismatch in any of them fails the whole bench run. *)
let write_exact_engine_json () =
  let jobs = 2 in
  let path = "BENCH_exact_engine.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"cpus\": %d,\n  \"jobs_measured\": %d,\n  \"budget_s\": %g,\n  \
     \"mismatches\": %d,\n  \"rows\": [\n%s\n  ]\n}\n"
    (Domain.recommended_domain_count ())
    jobs budget !exact_mismatches
    (String.concat ",\n" (List.rev !exact_rows));
  close_out oc;
  Format.printf "@.wrote %s (cpus=%d)@." path
    (Domain.recommended_domain_count ());
  if !exact_mismatches > 0 then begin
    Format.printf "@.ENGINE MISMATCHES PRESENT@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E22 — Tiered triage: all races over streaming million-event traces  *)
(* ------------------------------------------------------------------ *)

(* The headline scale claim: `races --engine auto` on a million-event
   trace in seconds, not hours.  Each [Progen] family is generated and
   triaged once (no budget sweep — the interesting number is the
   absolute wall-clock at the target scale); the cross-checks assert
   that the tiering never leaves a candidate undecided and that every
   planted race is found.  Rows land in BENCH_exact_engine.json with
   kind "triage". *)
let e22_triage () =
  header "E22  Tiered triage: all races over streaming million-event traces";
  let events = if quick then 20_000 else 1_000_000 in
  let rows =
    List.map
      (fun family ->
        let name = Progen.big_family_to_string family in
        let big, t_gen =
          Harness.time_once (fun () -> Workloads.big_trace family ~events)
        in
        let r, t_triage = Harness.time_once (fun () -> Triage.races_big big) in
        expect_exact (name ^ " undecided") 0 r.Triage.undecided;
        expect_exact
          (name ^ " planted races found")
          1
          (if r.Triage.certified > 0 then 1 else 0);
        expect_exact
          (name ^ " nothing truncated")
          0
          (if r.Triage.truncated then 1 else 0);
        exact_json
          {|    {"kind": "triage", "family": %S, "events": %d, "candidates": %d, "refuted": %d, "certified": %d, "undecided": %d, "gen_s": %.6f, "triage_s": %.6f}|}
          name events r.Triage.candidates r.Triage.refuted r.Triage.certified
          r.Triage.undecided t_gen t_triage;
        [
          name; string_of_int events;
          string_of_int r.Triage.candidates;
          string_of_int r.Triage.refuted;
          string_of_int r.Triage.certified;
          Harness.time_string t_gen; Harness.time_string t_triage;
        ])
      Workloads.big_trace_families
  in
  Harness.table
    ~title:"streaming races, tier-1 settled (undecided must stay 0)"
    ~header:
      [ "family"; "events"; "candidates"; "refuted"; "certified"; "gen";
        "triage" ]
    rows

(* ------------------------------------------------------------------ *)
(* E23 — Memory models: per-model triage tier hit rates at scale       *)
(* ------------------------------------------------------------------ *)

(* The pluggable-model claim, measured: relaxing the model (sc → tso →
   pso) weakens the tier-1 forced-order clock in the sound direction
   only — fewer refutations, never a wrong one — and the tier-hit
   counters say how much of the streaming workload each model still
   settles at tier 1.  Rows land in BENCH_exact_engine.json with kind
   "memmodel"; the sc row is cross-checked bit-for-bit against a run
   with the model left untouched (the legacy path). *)
let e23_memmodel () =
  header "E23  Memory models: per-model triage tier hit rates";
  let events = if quick then 20_000 else 200_000 in
  let saved_model = Memmodel.current () in
  let family = Progen.Fork_join in
  let name = Progen.big_family_to_string family in
  let big = Workloads.big_trace family ~events in
  let run () =
    let c = Counters.create () in
    let r, t = Harness.time_once (fun () -> Triage.races_big ~stats:c big) in
    (r, c, t)
  in
  let legacy, _, _ = run () in
  let rows =
    List.map
      (fun model ->
        Memmodel.set model;
        let r, c, t_triage = run () in
        Memmodel.set saved_model;
        let m = Memmodel.to_string model in
        let approx = Counters.get c Counters.Triage_approx_hits in
        expect_exact
          (Printf.sprintf "%s/%s accounting identity" name m)
          r.Triage.candidates
          (r.Triage.refuted + r.Triage.certified + r.Triage.undecided);
        expect_exact
          (Printf.sprintf "%s/%s refutes no more than the legacy clock" name m)
          1
          (if r.Triage.refuted <= legacy.Triage.refuted then 1 else 0);
        if model = Memmodel.Sc then
          expect_exact
            (Printf.sprintf "%s/sc bit-identical to the legacy path" name)
            1
            (if
               r.Triage.refuted = legacy.Triage.refuted
               && r.Triage.certified = legacy.Triage.certified
               && r.Triage.undecided = legacy.Triage.undecided
             then 1
             else 0);
        exact_json
          {|    {"kind": "memmodel", "family": %S, "model": %S, "events": %d, "candidates": %d, "refuted": %d, "certified": %d, "undecided": %d, "tier1_hits": %d, "triage_s": %.6f}|}
          name m events r.Triage.candidates r.Triage.refuted
          r.Triage.certified r.Triage.undecided approx t_triage;
        [
          name; m; string_of_int events;
          string_of_int r.Triage.candidates;
          string_of_int r.Triage.refuted;
          string_of_int r.Triage.certified;
          string_of_int r.Triage.undecided;
          string_of_int approx;
          Harness.time_string t_triage;
        ])
      Memmodel.all
  in
  Memmodel.set saved_model;
  (* The consistency checker's litmus matrix doubles as a cross-check:
     a drift in the rf/co semantics fails the bench run, not just the
     unit suite. *)
  List.iter
    (fun (shape, c, expected) ->
      List.iter
        (fun (model, want) ->
          let got =
            match Candidate.check ~model c with
            | Candidate.Consistent _ -> true
            | Candidate.Inconsistent _ -> false
          in
          expect_exact
            (Printf.sprintf "litmus %s under %s" shape
               (Memmodel.to_string model))
            (if want then 1 else 0)
            (if got then 1 else 0))
        (List.combine Memmodel.all expected);
      ignore c)
    [
      ("SB", Litmus.sb (), [ false; true; true ]);
      ("MP", Litmus.mp (), [ false; false; true ]);
    ];
  Harness.table
    ~title:"per-model streaming triage (fork_join; sc = legacy bit-for-bit)"
    ~header:
      [ "family"; "model"; "events"; "candidates"; "refuted"; "certified";
        "undecided"; "tier1"; "triage" ]
    rows

(* ------------------------------------------------------------------ *)
(* E16 — Scorecard: the paper's qualitative claims, checked in one go  *)
(* ------------------------------------------------------------------ *)

let e16_scorecard () =
  header "E16  Scorecard: every qualitative claim, machine-checked";
  let checks = ref [] in
  let check name expected actual =
    checks := (name, expected, actual) :: !checks
  in

  (* Theorems 1-4 + binary variant on both truth values. *)
  List.iter
    (fun (fname, f) ->
      List.iter
        (fun (tname, c) ->
          check (Printf.sprintf "%s on %s formula" tname fname) true
            c.Theorems.agrees)
        [
          ("Theorem 1 (sem, MHB)", Theorems.check_theorem_1 f);
          ("Theorem 2 (sem, CHB)", Theorems.check_theorem_2 f);
          ("Theorem 3 (evt, MHB)", Theorems.check_theorem_3 f);
          ("Theorem 4 (evt, CHB)", Theorems.check_theorem_4 f);
          ("Theorem 1 binary sems", Theorems.check_theorem_1_binary f);
          ("Theorem 2 binary sems", Theorems.check_theorem_2_binary f);
        ])
    [ ("SAT", Sat_gen.tiny_sat_3cnf ()); ("UNSAT", Sat_gen.tiny_unsat_3cnf ()) ];

  (* Exponential growth of the exact engine (>= x10 per added variable). *)
  let time_mhb n =
    let tr, d, a, b = reduction_sem_row (Workloads.unsat_chain n) in
    ignore tr;
    snd (Harness.time_once (fun () -> Decide.mhb d a b))
  in
  let t1 = time_mhb 1 and t2 = time_mhb 2 in
  check "exact MHB grows >= x10 per variable (UNSAT chains)" true
    (t2 > 10.0 *. t1);

  (* Figure 1: the task graph misses what the exact engine proves. *)
  let tr = Figure1.trace () in
  let x = Trace.to_execution tr in
  let ev = Figure1.events tr in
  let egp = Egp.build x in
  let d = Decide.create x in
  check "Figure 1: exact proves post1 MHB post2" true
    (Decide.mhb d ev.Figure1.post1 ev.Figure1.post2);
  check "Figure 1: task graph misses it" false
    (Egp.guaranteed_before egp ev.Figure1.post1 ev.Figure1.post2);

  (* HMW: safe phases inside exact MHB on the 2-pair workload. *)
  let xh =
    Trace.to_execution (Workloads.trace_of (Workloads.hmw_program ~pairs:2))
  in
  let h = Hmw.of_execution xh in
  let rh = Reach.create (Skeleton.of_execution xh) in
  let sound rel =
    let ok = ref true in
    Rel.iter (fun a b -> if not (Reach.must_before rh a b) then ok := false) rel;
    !ok
  in
  check "HMW phase 3 sound (within exact MHB)" true (sound h.Hmw.phase3);
  check "HMW phase 1 unsafe (overclaims)" false (sound h.Hmw.phase1);

  (* Races: the pairing blind spot. *)
  let xr = Trace.to_execution (Workloads.hidden_race_trace ()) in
  check "hidden race: invisible to vector clocks" true
    (List.length (Race.apparent_races xr) = 0);
  check "hidden race: found by the exact engine" true
    (List.length (Race.feasible_races xr) = 1);

  (* The single-semaphore reduction on fixed instances. *)
  List.iter
    (fun (name, inst, expected) ->
      let chb, feas = Reduction_single_sem.check inst in
      check (Printf.sprintf "single-semaphore: %s (oracle)" name) expected feas;
      check (Printf.sprintf "single-semaphore: %s (ordering)" name) expected chb)
    [
      ("sequencable", Sequencing.make ~costs:[| 1; 1; -1 |] ~precedence:[] ~budget:1, true);
      ( "not sequencable",
        Sequencing.make ~costs:[| 1; 1; -1 |] ~precedence:[ (0, 2); (1, 2) ] ~budget:1,
        false );
    ];

  (* Engine agreement on a reference workload. *)
  let sk = Workloads.skeleton_of (Workloads.pipeline_program ~stages:3 ~free:2) in
  let full = Relations.compute sk in
  let reduced = Relations.compute_reduced sk in
  check "compute_reduced = compute (reference workload)" true
    (List.for_all
       (fun rel ->
         Rel.equal (Relations.to_rel full rel) (Relations.to_rel reduced rel))
       Relations.all_relations);

  let rows =
    List.rev_map
      (fun (name, expected, actual) ->
        [ name; (if expected = actual then "PASS" else "FAIL") ])
      !checks
  in
  Harness.table ~title:"claims" ~header:[ "claim"; "verdict" ] rows;
  if List.exists (fun row -> List.nth row 1 = "FAIL") rows then begin
    Format.printf "@.SCORECARD FAILURES PRESENT@.";
    exit 1
  end

let () =
  Format.printf
    "event_ordering benchmark harness (budget per sweep point: %gs; set \
     EO_BENCH_BUDGET to change%s)@."
    budget
    (if quick then "; quick subset" else "");
  if quick then begin
    e1_table1 ();
    e2_theorem1 ();
    e19_exact_engine ();
    e20_sessions ();
    e21_sat_engine ();
    e22_triage ();
    e23_memmodel ();
    write_exact_engine_json ();
    e16_scorecard ()
  end
  else begin
    e1_table1 ();
    e2_theorem1 ();
    e3_theorem2 ();
    e4_theorem3 ();
    e5_theorem4 ();
    e6_figure1 ();
    e7_hmw ();
    e8_no_deps ();
    e9_races ();
    e10_ablation ();
    e11_polynomial_toolbox ();
    e12_static ();
    e13_sat_via_ordering ();
    e19_exact_engine ();
    e20_sessions ();
    e21_sat_engine ();
    e22_triage ();
    e23_memmodel ();
    write_exact_engine_json ();
    e15_explore ();
    e17_sat_substrate ();
    e18_single_semaphore ();
    e16_scorecard ()
  end;
  Format.printf "@.done.@."
